// Shift-invert Lanczos eigensolver and inertia-certified spectrum slicing
// over the Factorizable capability.
//
// One hierarchical factorization already contains the machinery of an
// eigensolver (Schäfer–Sullivan–Owhadi's "compression, inversion, and
// approximate PCA" observation): solve() turns the compressed operator
// into (K̃ − σI)⁻¹ — whose extreme eigenvalues are the eigenvalues of K̃
// nearest σ, magnified and separated — and the stored-Q orthogonal ULV's
// ~free refactorize(σ) makes moving the shift an O(N r²) retune instead of
// a rebuild. On top of that, the factorization's EXACT Haynsworth inertia
// turns every shift into a certified eigenvalue count: the number of
// eigenvalues of K̃ below σ is read off the eliminated diagonal blocks for
// free, which gives bisection-based spectrum slicing where every interval
// certifies how many eigenvalues it holds.
//
// Shift convention: Factorizable::factorize(λ) factors K̃ + λI, so the
// shift-invert operator at σ is the factorization tuned at λ = −σ.
#pragma once

#include <vector>

#include "core/operator.hpp"

/// Spectral workloads over compressed operators: eigenpairs, certified
/// eigenvalue counts, selected inverses, stochastic trace/logdet.
namespace gofmm::spectral {

/// Which end of the spectrum eigs() targets.
enum class Which {
  /// Largest algebraic eigenvalues — plain Lanczos on K̃ (matvec-only; no
  /// factorization needed, σ is ignored).
  Largest,
  /// Eigenvalues nearest the shift σ from below and above — shift-invert
  /// Lanczos through the factorization tuned at λ = −σ. With σ at or
  /// below the spectrum (the default σ = 0 for SPD operators) these are
  /// the smallest algebraic eigenvalues.
  Smallest,
};

/// Options of one eigs()/eigs_at() call, with the usual fluent builder:
/// `EigsOptions::defaults().with_k(10).with_which(Which::Smallest)`.
struct EigsOptions {
  index_t k = 6;                  ///< eigenpairs requested
  Which which = Which::Smallest;  ///< spectrum end (see Which)
  /// Shift-invert target σ (Which::Smallest only): the factorization is
  /// tuned at λ = −σ and convergence targets eigenvalues nearest σ.
  double sigma = 0.0;
  /// Lanczos subspace cap; 0 = automatic (max(4k+16, 64), clamped at N).
  index_t max_subspace = 0;
  /// Convergence threshold on the Lanczos residual bound |β_m s_{m,i}| of
  /// each wanted Ritz pair, relative to the Ritz value magnitude.
  double tolerance = 1e-11;
  /// Seed of the (Gaussian) starting vector and of any breakdown
  /// restarts; fixed seed ⇒ bit-reproducible eigenpairs.
  std::uint64_t seed = 1905;

  /// Default options, the seed of the with_* builder chain.
  [[nodiscard]] static EigsOptions defaults() { return EigsOptions{}; }
  /// Sets the number of eigenpairs.
  EigsOptions& with_k(index_t v) {
    k = v;
    return *this;
  }
  /// Sets the spectrum end.
  EigsOptions& with_which(Which v) {
    which = v;
    return *this;
  }
  /// Sets the shift-invert target σ.
  EigsOptions& with_sigma(double v) {
    sigma = v;
    return *this;
  }
  /// Sets the Lanczos subspace cap.
  EigsOptions& with_max_subspace(index_t v) {
    max_subspace = v;
    return *this;
  }
  /// Sets the convergence threshold.
  EigsOptions& with_tolerance(double v) {
    tolerance = v;
    return *this;
  }
  /// Sets the starting-vector seed.
  EigsOptions& with_seed(std::uint64_t v) {
    seed = v;
    return *this;
  }
};

/// Converged eigenpairs of one eigs() run.
template <typename T>
struct EigsResult {
  /// Eigenvalues of K̃, most extreme first (descending for Which::Largest,
  /// ascending-from-σ for Which::Smallest).
  std::vector<double> values;
  /// Orthonormal Ritz vectors, column j pairing with values[j].
  la::Matrix<T> vectors;
  /// True residual norms ‖K̃v_j − λ_j v_j‖₂ measured with one final
  /// blocked matvec (not the Lanczos bound) — divide by ‖K̃‖₂ ≈ max|λ|
  /// for the relative accuracy contract.
  std::vector<double> residuals;
  index_t iterations = 0;  ///< Lanczos steps taken (matvecs or solves)
  bool converged = false;  ///< all k bounds met before the subspace cap
};

/// Lanczos eigensolver against an ALREADY-TUNED operator: const and
/// thread-safe. Which::Largest needs only apply(); Which::Smallest
/// requires op.factorizable() factorized at exactly λ = −options.sigma
/// (throws StateError otherwise — use eigs() to retune automatically).
/// Full reorthogonalization keeps the basis orthonormal to round-off, and
/// an exact-breakdown restarts with a fresh seeded vector so invariant
/// subspaces (eigenvalue multiplicities) do not truncate the run.
template <typename T>
EigsResult<T> eigs_at(const CompressedOperator<T>& op,
                      EigsOptions options = EigsOptions::defaults(),
                      EvalWorkspace<T>* ws = nullptr);

/// Mutating convenience mirroring the classic eigs(op, k, which, σ)
/// signature: retunes the operator's factorization to λ = −σ — via
/// refactorize() when already factorized (the ~free orthogonal-ULV path),
/// else a first factorize() — then runs eigs_at(). Which::Largest skips
/// the factorization entirely.
template <typename T>
EigsResult<T> eigs(CompressedOperator<T>& op, index_t k,
                   Which which = Which::Smallest, double sigma = 0.0,
                   EigsOptions options = EigsOptions::defaults());

/// Number of eigenvalues of K̃ strictly below σ, read off the EXACT
/// Haynsworth inertia of the factorization retuned to λ = −σ. Mutating
/// (retunes the factorization) and cheap: one refactorize, no Lanczos.
/// Throws StateError when the backend has no factorization or when the
/// factorization's inertia is not exact (HODLR's Woodbury elimination
/// only sees a leaf-interlacing lower bound — use the orthogonal ULV
/// backends for certified counts).
template <typename T>
index_t eigenvalue_count_below(CompressedOperator<T>& op, double sigma);

/// Certified eigenvalue count of K̃ in the half-open interval [lo, hi):
/// two strictly-below inertia probes (refactorize at −hi then −lo).
/// Endpoint hits are measure-zero for generic probes — pick interval
/// endpoints between eigenvalues, not on them. Throws like
/// eigenvalue_count_below; requires lo <= hi.
template <typename T>
index_t eigenvalue_count(CompressedOperator<T>& op, double lo, double hi);

/// One interval of a spectrum slicing: exactly `count` eigenvalues of K̃
/// lie in [lo, hi), certified by exact inertia at both endpoints.
struct SpectrumSlice {
  double lo = 0;     ///< interval lower endpoint (inclusive)
  double hi = 0;     ///< interval upper endpoint (exclusive)
  index_t count = 0; ///< certified eigenvalue count in [lo, hi)
};

/// Bisection spectrum slicing over [lo, hi): recursively halves the
/// interval — every midpoint probe is one ~free refactorize — until each
/// slice holds at most `max_per_slice` eigenvalues or is narrower than
/// `min_width` (≤ 0 selects (hi-lo)·1e-6). Returns the non-empty slices
/// in ascending order; the counts sum to eigenvalue_count(op, lo, hi) by
/// construction (Haynsworth inertia is additive across the bisection
/// tree). Same StateError conditions as eigenvalue_count_below.
template <typename T>
std::vector<SpectrumSlice> slice_spectrum(CompressedOperator<T>& op,
                                          double lo, double hi,
                                          index_t max_per_slice = 1,
                                          double min_width = 0.0);

extern template EigsResult<float> eigs_at<float>(
    const CompressedOperator<float>&, EigsOptions, EvalWorkspace<float>*);
extern template EigsResult<double> eigs_at<double>(
    const CompressedOperator<double>&, EigsOptions, EvalWorkspace<double>*);
extern template EigsResult<float> eigs<float>(CompressedOperator<float>&,
                                              index_t, Which, double,
                                              EigsOptions);
extern template EigsResult<double> eigs<double>(CompressedOperator<double>&,
                                                index_t, Which, double,
                                                EigsOptions);
extern template index_t eigenvalue_count_below<float>(
    CompressedOperator<float>&, double);
extern template index_t eigenvalue_count_below<double>(
    CompressedOperator<double>&, double);
extern template index_t eigenvalue_count<float>(CompressedOperator<float>&,
                                                double, double);
extern template index_t eigenvalue_count<double>(CompressedOperator<double>&,
                                                 double, double);
extern template std::vector<SpectrumSlice> slice_spectrum<float>(
    CompressedOperator<float>&, double, double, index_t, double);
extern template std::vector<SpectrumSlice> slice_spectrum<double>(
    CompressedOperator<double>&, double, double, index_t, double);

}  // namespace gofmm::spectral
