// Operator/factorization cache of the solve service.
//
// A long-lived service answers many solves against few operators: the same
// kernel matrix is compressed once and then queried under a stream of
// right-hand sides and regularizations. This cache keys built operators by
// their STRUCTURE — (dataset id, config fingerprint, elimination mode,
// ULV mode, storage precision) —
// and lets λ float per entry, because the ULV engine retunes λ through
// refactorize() at a fraction of a rebuild (orthogonal elimination:
// rotations, bases, and couplings are all λ-independent). A request for a
// cached structure at a new λ therefore never re-compresses and never
// re-runs the full factorization; it takes the refactorize fast path under
// the entry's writer lock.
//
// Concurrency contract:
//  * acquire() is single-flight: any number of threads missing the same
//    cold key block on ONE build; the rest never invoke the builder.
//  * with_operator() runs the caller's function under the entry's shared
//    lock with the factorization pinned at the requested λ, so concurrent
//    solves at one λ proceed in parallel while a retune to another λ
//    waits for exclusivity (and vice versa).
//  * Eviction is LRU over a byte budget counting compression + factor
//    bytes. In-flight users hold shared_ptr references, so an evicted
//    entry's memory is released when the last solve against it finishes.
#pragma once

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/config.hpp"
#include "core/error.hpp"
#include "core/operator.hpp"
#include "service/service_stats.hpp"

namespace gofmm::service {

/// Stable textual fingerprint of every Config field that shapes the
/// compressed operator (leaf size, ranks, tolerance, sampling, seed, ...).
/// Two configs with equal fingerprints build bit-identical compressions;
/// execution-only knobs (engine, num_workers) are deliberately EXCLUDED —
/// the phase builders order reductions deterministically, so the engine
/// changes wall-clock, not bits, and folding it in would duplicate entries.
std::string config_fingerprint(const Config& config);

/// What a service request asks an operator to be: which matrix (by dataset
/// id — the cache never sees the data, only the builder does), compressed
/// how, factorized with which elimination, regularized by which λ.
struct OperatorSpec {
  /// Dataset identifier the builder resolves (e.g. a zoo name "kernel-2k";
  /// the cache treats it as an opaque id).
  std::string dataset;
  /// Compression tunables; fingerprinted into the structure key.
  Config config = Config::defaults();
  /// Regularization λ. NOT part of the structure key: entries retune to a
  /// requested λ via refactorize() instead of rebuilding.
  double lambda = 0.0;
  /// Factorization policy: elimination strategy, ULV mode, and storage
  /// precision. ALL part of the structure key — Cholesky and pivoted-LDLᵀ
  /// factors differ structurally, forced Woodbury differs from Auto, and a
  /// MixedF32 factorization stores different (float) bytes than a Double
  /// one, so the two must never alias one cache entry.
  FactorizeOptions factorize = FactorizeOptions::defaults();

  /// The physical cache key:
  /// dataset | config fingerprint | elimination | mode | precision.
  /// Everything except λ.
  [[nodiscard]] std::string structure_key() const;
};

/// Keyed, single-flight, byte-budgeted LRU cache of built-and-factorized
/// compressed operators. `T` is the scalar type (float/double).
template <typename T>
class OperatorCache {
 public:
  /// Builds (compresses) the operator for a spec. Invoked outside all cache
  /// locks, at most once per cold structure key (single-flight); exceptions
  /// propagate to every waiter of that build. The cache factorizes the
  /// returned operator itself when it supports it — builders only compress.
  using Builder =
      std::function<std::shared_ptr<CompressedOperator<T>>(const OperatorSpec&)>;

  /// One resident operator. Readers (solve/apply/logdet — const,
  /// thread-safe) hold `mu` shared; λ-retunes (refactorize mutates) hold it
  /// exclusively. `lambda` is the λ the factorization is currently tuned
  /// to, guarded by `mu`.
  struct Entry {
    std::shared_ptr<CompressedOperator<T>> op;  ///< the built operator
    std::shared_mutex mu;      ///< shared = use, exclusive = retune
    double lambda = 0.0;       ///< current factorization λ (guarded by mu)
    std::uint64_t bytes = 0;   ///< compression + factor bytes charged
    std::string skey;          ///< owning structure key (for diagnostics)
  };

  /// A cache with a builder and a resident-byte budget. The budget is a
  /// soft target: the most recently used entry always stays, so a single
  /// operator larger than the budget still caches (and evicts the rest).
  OperatorCache(Builder builder, std::uint64_t byte_budget)
      : builder_(std::move(builder)), budget_(byte_budget) {
    check<ConfigError>(bool(builder_), "OperatorCache: builder is empty");
  }

  /// Returns the entry for the spec's STRUCTURE, building it on a cold key
  /// (single-flight: concurrent misses wait for one build). Does not touch
  /// λ — pair with with_operator() to use the factorization at spec.lambda.
  std::shared_ptr<Entry> acquire(const OperatorSpec& spec) {
    const std::string key = spec.structure_key();
    std::shared_future<std::shared_ptr<Entry>> flight;
    std::shared_ptr<std::promise<std::shared_ptr<Entry>>> mine;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (auto it = map_.find(key); it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);  // most recently used
        counters_.hits += 1;
        return *it->second;
      }
      if (auto bit = building_.find(key); bit != building_.end()) {
        counters_.single_flight_waits += 1;
        flight = bit->second;
      } else {
        counters_.misses += 1;
        mine = std::make_shared<std::promise<std::shared_ptr<Entry>>>();
        building_.emplace(key, mine->get_future().share());
      }
    }
    if (!mine) return flight.get();  // rethrows the winner's build error

    // We won the build race: compress + factorize outside every lock.
    std::shared_ptr<Entry> entry;
    try {
      entry = build(spec, key);
    } catch (...) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        building_.erase(key);
      }
      mine->set_exception(std::current_exception());
      throw;
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      lru_.push_front(entry);
      map_.emplace(key, lru_.begin());
      counters_.builds += 1;
      counters_.resident_bytes += entry->bytes;
      evict_over_budget();
      building_.erase(key);
    }
    mine->set_value(entry);
    return entry;
  }

  /// Runs `fn(entry)` with the factorization tuned to spec.lambda: under
  /// the entry's SHARED lock when λ already matches (concurrent solves at
  /// one λ proceed in parallel), or — when another λ is resident — under
  /// the EXCLUSIVE lock immediately after the refactorize() retune. The
  /// retuned call keeps the write lock through `fn` on purpose: releasing
  /// it to downgrade would let an interleaved batch at the other λ retune
  /// back before we re-enter, and two alternating λs then livelock in a
  /// retune ping-pong without ever running their sweeps. Operators without
  /// a factorization capability (e.g. ACA) skip the λ protocol — `fn`
  /// runs immediately under the shared lock.
  template <typename F>
  auto with_operator(const OperatorSpec& spec, F&& fn) {
    std::shared_ptr<Entry> entry = acquire(spec);
    {
      std::shared_lock<std::shared_mutex> read(entry->mu);
      if (entry->op->factorizable() == nullptr ||
          entry->lambda == spec.lambda)
        return fn(*entry);
    }
    std::unique_lock<std::shared_mutex> write(entry->mu);
    if (entry->lambda != spec.lambda) {
      entry->op->factorizable()->refactorize(T(spec.lambda));
      entry->lambda = spec.lambda;
      std::unique_lock<std::mutex> lk(mu_);
      counters_.retunes += 1;
    }
    return fn(*entry);
  }

  /// True when the structure key is resident (no LRU touch, no build).
  [[nodiscard]] bool contains(const std::string& structure_key) const {
    std::unique_lock<std::mutex> lk(mu_);
    return map_.find(structure_key) != map_.end();
  }

  /// Snapshot of the hit/miss/retune/evict counters.
  [[nodiscard]] CacheCounters counters() const {
    std::unique_lock<std::mutex> lk(mu_);
    CacheCounters c = counters_;
    c.entries = map_.size();
    return c;
  }

  /// The configured resident-byte budget.
  [[nodiscard]] std::uint64_t byte_budget() const { return budget_; }

 private:
  std::shared_ptr<Entry> build(const OperatorSpec& spec,
                               const std::string& key) {
    auto entry = std::make_shared<Entry>();
    entry->skey = key;
    entry->op = builder_(spec);
    check<StateError>(entry->op != nullptr,
                      "OperatorCache: builder returned no operator for '" +
                          key + "'");
    entry->bytes = entry->op->memory_bytes();
    if (auto* fact = entry->op->factorizable(); fact != nullptr) {
      fact->factorize(T(spec.lambda), spec.factorize);
      entry->lambda = spec.lambda;
      entry->bytes += fact->factorization_stats().memory_bytes;
    }
    return entry;
  }

  // Drops least-recently-used entries until the budget holds, always
  // keeping the MRU entry. Caller holds mu_.
  void evict_over_budget() {
    while (counters_.resident_bytes > budget_ && lru_.size() > 1) {
      const std::shared_ptr<Entry>& victim = lru_.back();
      counters_.resident_bytes -= victim->bytes;
      counters_.evictions += 1;
      map_.erase(victim->skey);
      lru_.pop_back();  // in-flight users keep their shared_ptr alive
    }
  }

  using LruList = std::list<std::shared_ptr<Entry>>;

  Builder builder_;
  const std::uint64_t budget_;
  mutable std::mutex mu_;  // guards map_/lru_/building_/counters_
  LruList lru_;            // front = most recently used
  std::unordered_map<std::string, typename LruList::iterator> map_;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<Entry>>>
      building_;
  CacheCounters counters_;
};

}  // namespace gofmm::service
