#include "service/operator_cache.hpp"

#include <sstream>

namespace gofmm::service {

namespace {

// Exact, locale-independent float image (hexfloat round-trips bit-for-bit,
// so 1e-5 and the nearest double to it never collide or split keys).
void put(std::ostringstream& out, const char* tag, double v) {
  out << tag << '=' << std::hexfloat << v << std::defaultfloat << ';';
}

void put(std::ostringstream& out, const char* tag, long long v) {
  out << tag << '=' << v << ';';
}

}  // namespace

std::string config_fingerprint(const Config& config) {
  std::ostringstream out;
  put(out, "m", (long long)config.leaf_size);
  put(out, "s", (long long)config.max_rank);
  put(out, "tau", config.tolerance);
  put(out, "kappa", (long long)config.kappa);
  put(out, "budget", config.budget);
  out << "dist=" << tree::to_string(config.distance) << ';';
  put(out, "cache", (long long)config.cache_blocks);
  put(out, "sym", (long long)config.symmetric_near);
  put(out, "nsamp", (long long)config.neighbor_sampling);
  put(out, "sf", config.sample_factor);
  put(out, "sx", (long long)config.sample_extra);
  put(out, "seed", (long long)config.seed);
  put(out, "anni", (long long)config.ann_max_iterations);
  put(out, "annr", config.ann_target_recall);
  return out.str();
}

std::string OperatorSpec::structure_key() const {
  const char* elim = factorize.elimination == Elimination::Auto       ? "auto"
                     : factorize.elimination == Elimination::Cholesky ? "chol"
                                                                      : "ldlt";
  const char* mode = factorize.mode == UlvMode::Auto       ? "auto"
                     : factorize.mode == UlvMode::Woodbury ? "woodbury"
                                                           : "orthogonal";
  // Precision is load-bearing: a MixedF32 factorization holds float
  // factors, a Double one holds doubles — aliasing them under one key
  // would hand half the requests the wrong storage policy.
  const char* prec = factorize.precision == Precision::MixedF32 ? "f32" : "f64";
  return dataset + '|' + config_fingerprint(config) + '|' + elim + '|' + mode +
         '|' + prec;
}

}  // namespace gofmm::service
