// Metrics surface of the solve service (src/service/solve_service.hpp).
//
// Counters answer the capacity questions a long-lived solve service gets
// asked: is the operator cache earning its bytes (hit/miss/retune/evict),
// is cross-request coalescing working (batch-size histogram, columns per
// sweep), and what latency are clients seeing (p50/p99 from a log-bucketed
// histogram — no per-request sample storage, so recording is O(1) and the
// surface is safe to scrape under load).
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>

namespace gofmm::service {

/// Snapshot of the operator cache counters (see OperatorCache<T>::counters).
struct CacheCounters {
  std::uint64_t hits = 0;       ///< acquire() found a ready entry
  std::uint64_t misses = 0;     ///< acquire() initiated a build
  /// acquire() joined a build already in flight (single-flight: a cold-key
  /// stampede of k threads counts 1 miss + (k-1) waits, and 1 build).
  std::uint64_t single_flight_waits = 0;
  std::uint64_t builds = 0;     ///< compress+factorize runs (== distinct cold keys)
  /// λ-only refactorize() fast paths taken on a structural hit. A healthy
  /// λ-sweep workload grows this while `builds` stays at the number of
  /// distinct (dataset, config, factorization-policy) tuples.
  std::uint64_t retunes = 0;
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU byte budget
  std::uint64_t resident_bytes = 0;  ///< bytes currently charged to the cache
  std::uint64_t entries = 0;         ///< resident entry count
};

/// Log-bucketed latency histogram: ~30% wide buckets from 10 µs to ~1000 s,
/// atomic increments, percentile estimates from bucket midpoints.
class LatencyHistogram {
 public:
  /// Number of geometric buckets (bucket i covers 10µs·1.3^i).
  static constexpr int kBuckets = 72;

  /// Records one sample (thread-safe, O(1), no allocation).
  void record(double seconds) {
    buckets_[std::size_t(bucket(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Estimated p-th percentile (0-100) in seconds; 0 with no samples.
  /// Accurate to one bucket width (~±15%), which is what a service
  /// dashboard needs from a p99.
  [[nodiscard]] double percentile(double p) const {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0) return 0.0;
    const double rank = p / 100.0 * double(n);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[std::size_t(i)].load(std::memory_order_relaxed);
      if (double(seen) >= rank) return midpoint(i);
    }
    return midpoint(kBuckets - 1);
  }

  /// Samples recorded so far.
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static int bucket(double seconds) {
    const double us = seconds * 1e6;
    if (us <= 10.0) return 0;
    const int b = int(std::log(us / 10.0) / std::log(1.3));
    return b >= kBuckets ? kBuckets - 1 : b;
  }
  static double midpoint(int i) {
    return 10.0 * std::pow(1.3, double(i) + 0.5) * 1e-6;
  }

  std::array<std::atomic<std::uint64_t>, std::size_t(kBuckets)> buckets_{};
  std::atomic<std::uint64_t> count_{0};
};

/// Point-in-time metrics snapshot returned by SolveService<T>::stats().
struct ServiceStats {
  CacheCounters cache;               ///< operator/factorization cache health

  std::uint64_t requests = 0;        ///< accepted submissions
  std::uint64_t rejected = 0;        ///< OverloadedError admissions
  std::uint64_t completed = 0;       ///< futures fulfilled with a result
  std::uint64_t failed = 0;          ///< futures fulfilled with an exception
  std::uint64_t queue_depth = 0;     ///< requests in flight right now

  std::uint64_t batches = 0;         ///< coalesced sweeps dispatched
  std::uint64_t batched_columns = 0; ///< total rhs columns across sweeps
  /// Stochastic trace requests accepted (a subset of `requests`). The
  /// spectral kinds' batches land in batch_size_log2 by request count
  /// (rhs-free kinds have no columns) and their completions in the
  /// latency histogram like any other kind.
  std::uint64_t trace_requests = 0;
  std::uint64_t eigs_requests = 0;  ///< eigensolve requests accepted (ditto)
  /// Iterative-refinement sweeps run on mixed-precision (MixedF32)
  /// factorizations, summed over all batches: each count is one extra
  /// residual + correction solve the service paid to recover double
  /// accuracy from float factors. 0 under Precision::Double.
  std::uint64_t refine_iterations = 0;
  /// Batch-size histogram: bucket i counts sweeps of 2^i .. 2^(i+1)-1
  /// columns (last bucket open-ended). Mass in the higher buckets is
  /// cross-request coalescing doing its job.
  std::array<std::uint64_t, 8> batch_size_log2{};

  double latency_p50_s = 0;          ///< median request latency (submit→done)
  double latency_p99_s = 0;          ///< tail request latency
  std::uint64_t latency_samples = 0; ///< completions measured

  /// Mean columns per dispatched sweep (1.0 = no coalescing happening).
  [[nodiscard]] double avg_batch_cols() const {
    return batches > 0 ? double(batched_columns) / double(batches) : 0.0;
  }
};

}  // namespace gofmm::service
