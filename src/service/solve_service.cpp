#include "service/solve_service.hpp"

namespace gofmm::service {

OverloadedError::OverloadedError(const std::string& msg) : Error(msg) {}

// The service is used at both precisions by tests and benches; instantiate
// here so their translation units link against one compiled copy.
template class WorkspacePool<float>;
template class WorkspacePool<double>;
template class OperatorCache<float>;
template class OperatorCache<double>;
template class SolveService<float>;
template class SolveService<double>;

}  // namespace gofmm::service
