// The solve service: a long-lived, in-process front end that turns GOFMM's
// batch-friendly primitives into a request/response runtime.
//
// Three layers, each mapping a service concern onto a library strength:
//
//  1. OperatorCache (operator_cache.hpp) — compress once, retune λ for
//     ~free: a (dataset, config, factorization-policy) structure is built
//     on first touch and every later λ goes through refactorize(), never a
//     rebuild. Mixed-precision (MixedF32) entries hold float factors, so
//     they charge ~half the factor bytes against the LRU budget.
//  2. Cross-request batching — the ULV engine solves an N-by-r block 7-9×
//     faster than r sequential solves, so concurrent requests against the
//     same (structure, λ) coalesce into ONE blocked sweep. A request waits
//     at most `batch_window` for company; a batch reaching `max_batch_cols`
//     flushes immediately. Results are bit-identical to solo solves:
//     blocked solves are column-independent (la/-level GEMMs never mix
//     columns), so coalescing changes throughput, not bits.
//  3. Async executor — every batch becomes a small TaskGraph (build →
//     retune → sweep, wired with cost estimates) submitted to the revived
//     rt::Scheduler's persistent worker pool, so compression of a cold
//     operator overlaps sweeps against warm ones, and callers only ever
//     block on their own future.
//
// Backpressure: admission is bounded by `max_pending` in-flight requests;
// submissions beyond it throw OverloadedError (typed, catchable) rather
// than queueing without bound. Shutdown drains: every accepted request's
// future completes before the destructor returns.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/operator.hpp"
#include "core/solvers.hpp"
#include "la/blas.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "service/operator_cache.hpp"
#include "service/service_stats.hpp"
#include "spectral/eigs.hpp"
#include "spectral/trace.hpp"

namespace gofmm::service {

/// Admission-control rejection: the service's bounded queue is full. Shed
/// load by retrying later (the queue drains at sweep speed) — catch this
/// type specifically; it never signals a fault in the request itself.
class OverloadedError : public Error {
 public:
  /// Carries the queue state (pending vs bound) in the message.
  explicit OverloadedError(const std::string& msg);
};

/// What a request asks of the operator.
enum class RequestKind {
  Solve,   ///< x = (K̃+λI)⁻¹ b through the cached factorization
  Matvec,  ///< u = K̃ w through the compressed operator (λ unused)
  Logdet,  ///< log det(K̃+λI) of the cached factorization
  /// Stochastic trace estimate of K̃ (or of (K̃+λI)⁻¹ via
  /// TraceTarget::Inverse) with a variance-tracked confidence interval.
  Trace,
  /// Extreme eigenpairs: shift-invert Lanczos at σ = −spec.lambda through
  /// the cached factorization (Which::Smallest), plain Lanczos otherwise.
  Eigs,
};

/// Kinds that carry no right-hand side — their batch width is the request
/// count, not a column count, and identical coalesced requests share one
/// computed result.
[[nodiscard]] constexpr bool rhs_free(RequestKind kind) {
  return kind == RequestKind::Logdet || kind == RequestKind::Trace ||
         kind == RequestKind::Eigs;
}

/// What a request's future resolves to.
template <typename T>
struct ServiceResult {
  /// Solution block (Solve) or product block (Matvec) in the caller's
  /// column order; orthonormal Ritz vectors (Eigs); empty otherwise.
  la::Matrix<T> values;
  /// Per-column relative residuals ‖(K̃+λI)x_j − b_j‖/‖b_j‖, measured with
  /// one extra blocked matvec per batch (Solve, when the service's
  /// `report_residuals` option is on); per-pair eigenresiduals ‖K̃v−λv‖
  /// for Eigs.
  std::vector<double> residuals;
  /// log det(K̃+λI) (Logdet only; NaN otherwise).
  double logdet = std::numeric_limits<double>::quiet_NaN();
  /// Stochastic trace estimate with its confidence interval (Trace only;
  /// a zero-probe default otherwise).
  spectral::TraceEstimate trace;
  /// Eigenvalues, most extreme first (Eigs only); the paired Ritz vectors
  /// land in `values` and the true residuals ‖K̃v−λv‖ in `residuals`.
  std::vector<double> eigenvalues;
  /// Whether every requested eigenpair met the residual bound (Eigs only).
  bool eigs_converged = false;
  /// Width of the sweep this request rode in (1 = no coalescing): total
  /// rhs columns for Solve/Matvec, coalesced request count for the
  /// rhs-free kinds (Logdet/Trace/Eigs) — matching the batch histogram.
  index_t batch_cols = 0;
  /// Iterative-refinement sweeps the batch ran to reach the requested
  /// residual (Solve against a MixedF32 factorization with refine on;
  /// 0 everywhere else).
  index_t refine_iterations = 0;
  /// Submit → sweep-start wait (batching window + queueing + build time).
  double queue_seconds = 0;
  /// Sweep wall-clock (shared by every request of the batch).
  double sweep_seconds = 0;
};

/// Pool of EvalWorkspace scratch blocks, leased RAII-style by sweeps.
/// A returned workspace is reset() — counters cleared, buffer CAPACITY
/// kept — so steady-state sweeps of a stable shape run with zero scratch
/// (re)allocation (asserted in tests/test_service.cpp).
template <typename T>
class WorkspacePool {
 public:
  /// Move-only handle; returns the workspace to the pool on destruction.
  class Lease {
   public:
    /// Moves ownership of the leased workspace; the source goes empty.
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    /// Move-assign: returns any currently held workspace first.
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        ws_ = std::move(other.ws_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;             ///< a lease has one holder
    Lease& operator=(const Lease&) = delete;  ///< a lease has one holder
    /// Returns the workspace to the pool (reset, capacity kept).
    ~Lease() { release(); }

    EvalWorkspace<T>& operator*() { return *ws_; }     ///< leased workspace
    EvalWorkspace<T>* operator->() { return ws_.get(); }  ///< leased workspace

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, std::unique_ptr<EvalWorkspace<T>> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    void release() {
      if (pool_ != nullptr && ws_ != nullptr) pool_->put(std::move(ws_));
      pool_ = nullptr;
    }
    WorkspacePool* pool_;
    std::unique_ptr<EvalWorkspace<T>> ws_;
  };

  /// Hands out an idle workspace, or grows the pool when all are leased.
  Lease lease() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (!free_.empty()) {
        auto ws = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(ws));
      }
      created_ += 1;
    }
    return Lease(this, std::make_unique<EvalWorkspace<T>>());
  }

  /// Workspaces idle in the pool right now.
  [[nodiscard]] std::size_t idle() const {
    std::lock_guard<std::mutex> lk(mu_);
    return free_.size();
  }
  /// Workspaces ever constructed (steady state: stops growing).
  [[nodiscard]] std::size_t created() const {
    std::lock_guard<std::mutex> lk(mu_);
    return created_;
  }

 private:
  void put(std::unique_ptr<EvalWorkspace<T>> ws) {
    ws->reset();  // clear counters, keep buffer capacity
    std::lock_guard<std::mutex> lk(mu_);
    free_.push_back(std::move(ws));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<EvalWorkspace<T>>> free_;
  std::size_t created_ = 0;
};

/// The long-lived solve service. Construct once with a builder that maps
/// dataset ids to compressed operators, then submit from any number of
/// threads; each submit returns a future. `T` is the scalar type.
template <typename T>
class SolveService {
 public:
  /// Maps an OperatorSpec to a compressed operator (see OperatorCache).
  using Builder = typename OperatorCache<T>::Builder;
  /// Monotonic clock for batch windows and latency metrics.
  using Clock = std::chrono::steady_clock;

  /// Service tunables (defaults suit test/bench-sized problems).
  struct Options {
    /// Resident-byte budget of the operator cache (compression + factors).
    std::uint64_t cache_byte_budget = std::uint64_t(512) << 20;
    /// A batch reaching this many rhs columns flushes without waiting out
    /// the window (one oversized request may overshoot it).
    index_t max_batch_cols = 64;
    /// How long the first request of a batch waits for company. The knob
    /// trades latency for coalescing; 0 still coalesces whatever arrived
    /// while the executor was busy.
    std::chrono::microseconds batch_window{250};
    /// Admission bound: in-flight requests beyond this throw
    /// OverloadedError at submit.
    std::size_t max_pending = 4096;
    /// Executor workers (0 = hardware concurrency).
    int num_workers = 0;
    /// Measure per-column solve residuals (one extra blocked matvec per
    /// solve batch). Off = solves return without residuals.
    bool report_residuals = true;
  };

  /// Starts the executor pool and the dispatcher thread immediately;
  /// operators build lazily on first request (or warm via cache()).
  explicit SolveService(Builder builder, Options options = {})
      : opts_(options),
        cache_(std::move(builder), options.cache_byte_budget),
        sched_(options.num_workers),
        dispatcher_([this] { dispatcher(); }) {}

  SolveService(const SolveService&) = delete;             ///< owns threads
  SolveService& operator=(const SolveService&) = delete;  ///< owns threads

  /// Drains: flushes open batches, waits for every accepted request's
  /// future to complete, then stops the executor.
  ~SolveService() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    dispatcher_.join();  // flushes every open batch before exiting
    std::vector<std::unique_ptr<Batch>> inflight;
    {
      std::lock_guard<std::mutex> lk(mu_);
      inflight.swap(inflight_);
    }
    for (auto& b : inflight) b->done.wait();
  }

  /// Enqueues a request; the future resolves when its batch's sweep
  /// completes (or faults). Throws OverloadedError beyond `max_pending`
  /// in-flight requests, StateError after shutdown, DimensionError for an
  /// empty rhs on Solve/Matvec. The rhs is moved in; concurrent submits
  /// against the same (structure, λ, kind, solve-options) coalesce into
  /// one sweep. `solve_options` shapes Solve requests only (refinement
  /// policy against mixed-precision factorizations); it is part of the
  /// batch key, so requests with different policies never share a sweep.
  std::future<ServiceResult<T>> submit(
      RequestKind kind, OperatorSpec spec,
      la::Matrix<T> rhs = la::Matrix<T>(),
      SolveOptions solve_options = SolveOptions::defaults(),
      spectral::TraceOptions trace_options = spectral::TraceOptions::defaults(),
      spectral::EigsOptions eigs_options = spectral::EigsOptions::defaults()) {
    check<DimensionError>(rhs_free(kind) || !rhs.empty(),
                          "SolveService: empty right-hand side");
    // The cache pins the factorization at spec.lambda, so that IS the
    // shift-invert tuning: σ = −λ (factorize(λ) factors K̃+λI).
    if (kind == RequestKind::Eigs) eigs_options.sigma = -spec.lambda;
    auto req = std::make_unique<Request>();
    req->rhs = std::move(rhs);
    req->enqueued = Clock::now();
    std::future<ServiceResult<T>> fut = req->promise.get_future();
    const std::string key =
        batch_key(spec, kind, solve_options, trace_options, eigs_options);
    {
      std::lock_guard<std::mutex> lk(mu_);
      check<StateError>(!stop_, "SolveService: submit after shutdown");
      if (pending_ >= opts_.max_pending) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        throw OverloadedError(
            "SolveService: overloaded — " + std::to_string(pending_) +
            " requests in flight (max_pending = " +
            std::to_string(opts_.max_pending) + "); retry after the queue drains");
      }
      pending_ += 1;
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (kind == RequestKind::Trace)
        trace_requests_.fetch_add(1, std::memory_order_relaxed);
      if (kind == RequestKind::Eigs)
        eigs_requests_.fetch_add(1, std::memory_order_relaxed);
      std::unique_ptr<Batch>& slot = open_[key];
      if (slot == nullptr) {
        slot = std::make_unique<Batch>();
        slot->spec = spec;
        slot->kind = kind;
        slot->solve = solve_options;
        slot->trace = trace_options;
        slot->eigs = eigs_options;
        slot->key = key;
        slot->deadline = req->enqueued + opts_.batch_window;
      }
      slot->cols += req->rhs.cols();
      slot->requests.push_back(std::move(req));
      // A full batch closes at submit time: later requests open a fresh
      // one, so max_batch_cols truly caps a sweep's width (one oversized
      // request may still overshoot) and max_batch_cols = 1 degenerates
      // to honest per-request sweeps (the bench's unbatched baseline).
      if (slot->cols >= opts_.max_batch_cols) {
        ready_.push_back(std::move(slot));
        open_.erase(key);
      }
    }
    cv_.notify_all();
    return fut;
  }

  /// submit(Solve) sugar.
  std::future<ServiceResult<T>> submit_solve(
      OperatorSpec spec, la::Matrix<T> rhs,
      SolveOptions solve_options = SolveOptions::defaults()) {
    return submit(RequestKind::Solve, std::move(spec), std::move(rhs),
                  solve_options);
  }
  /// submit(Matvec) sugar.
  std::future<ServiceResult<T>> submit_matvec(OperatorSpec spec,
                                              la::Matrix<T> rhs) {
    return submit(RequestKind::Matvec, std::move(spec), std::move(rhs));
  }
  /// submit(Logdet) sugar.
  std::future<ServiceResult<T>> submit_logdet(OperatorSpec spec) {
    return submit(RequestKind::Logdet, std::move(spec));
  }
  /// submit(Trace) sugar: stochastic trace of K̃ (or (K̃+λI)⁻¹ with
  /// TraceTarget::Inverse), estimator chosen by options.method. Identical
  /// coalesced requests (same spec + options, hence same seed) share one
  /// estimate — bit-reproducible, so sharing is exact.
  std::future<ServiceResult<T>> submit_trace(
      OperatorSpec spec,
      spectral::TraceOptions options = spectral::TraceOptions::defaults()) {
    return submit(RequestKind::Trace, std::move(spec), la::Matrix<T>(),
                  SolveOptions::defaults(), options);
  }
  /// submit(Eigs) sugar: extreme eigenpairs of K̃. Which::Smallest
  /// shift-inverts at σ = −spec.lambda — the factorization the cache pins
  /// for this spec — so a shift sweep is a λ sweep: one build, one retune
  /// per distinct shift (options.sigma is overwritten accordingly).
  std::future<ServiceResult<T>> submit_eigs(
      OperatorSpec spec,
      spectral::EigsOptions options = spectral::EigsOptions::defaults()) {
    return submit(RequestKind::Eigs, std::move(spec), la::Matrix<T>(),
                  SolveOptions::defaults(), spectral::TraceOptions::defaults(),
                  options);
  }

  /// Blocking convenience: submit + wait.
  ServiceResult<T> solve(OperatorSpec spec, la::Matrix<T> rhs) {
    return submit_solve(std::move(spec), std::move(rhs)).get();
  }

  /// Blocks until every accepted request has completed and no batch is
  /// open. New submits may land while draining; they are waited for too.
  void drain() {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0 && open_.empty(); });
  }

  /// Point-in-time metrics snapshot (thread-safe, non-quiescing).
  [[nodiscard]] ServiceStats stats() const {
    ServiceStats s;
    s.cache = cache_.counters();
    s.requests = requests_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batched_columns = batched_cols_.load(std::memory_order_relaxed);
    s.trace_requests = trace_requests_.load(std::memory_order_relaxed);
    s.eigs_requests = eigs_requests_.load(std::memory_order_relaxed);
    s.refine_iterations = refine_iters_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < s.batch_size_log2.size(); ++i)
      s.batch_size_log2[i] = batch_hist_[i].load(std::memory_order_relaxed);
    s.latency_p50_s = latency_.percentile(50);
    s.latency_p99_s = latency_.percentile(99);
    s.latency_samples = latency_.count();
    {
      std::lock_guard<std::mutex> lk(mu_);
      s.queue_depth = pending_;
    }
    return s;
  }

  /// The operator cache (e.g. to pre-warm structures or read counters).
  [[nodiscard]] OperatorCache<T>& cache() { return cache_; }
  /// The sweep scratch pool (its `created()` plateaus at steady state).
  [[nodiscard]] WorkspacePool<T>& workspaces() { return pool_; }

 private:
  struct Request {
    la::Matrix<T> rhs;
    std::promise<ServiceResult<T>> promise;
    typename Clock::time_point enqueued;
  };

  // One coalesced sweep: the requests of a (structure, λ, kind) key that
  // arrived within a window. Owns the TaskGraph it executes as, so it must
  // outlive `done` (inflight_ holds it until then).
  struct Batch {
    OperatorSpec spec;
    RequestKind kind;
    SolveOptions solve;            // refinement policy (Solve batches)
    spectral::TraceOptions trace;  // estimator shape (Trace batches)
    spectral::EigsOptions eigs;    // eigensolver shape (Eigs batches)
    std::string key;  // batch key (structure | λ | kind | kind options)
    std::vector<std::unique_ptr<Request>> requests;
    index_t cols = 0;
    typename Clock::time_point deadline;
    rt::TaskGraph graph;
    std::shared_future<void> done;
    std::exception_ptr build_error;  // set by the build task, read by sweep
  };

  static std::string batch_key(const OperatorSpec& spec, RequestKind kind,
                               const SolveOptions& so,
                               const spectral::TraceOptions& to,
                               const spectral::EigsOptions& eo) {
    char lam[40];
    std::snprintf(lam, sizeof lam, "%la", spec.lambda);  // exact λ image
    const char* tag = kind == RequestKind::Solve    ? "solve"
                      : kind == RequestKind::Matvec ? "matvec"
                      : kind == RequestKind::Logdet ? "logdet"
                      : kind == RequestKind::Trace  ? "trace"
                                                    : "eigs";
    std::string key = spec.structure_key() + '|' + lam + '|' + tag;
    if (kind == RequestKind::Solve) {
      // Solve options change what a sweep computes (refinement target and
      // budget), so batches with different policies must not coalesce.
      // Matvec/Logdet ignore them — keying would only fragment batches.
      char opt[64];
      std::snprintf(opt, sizeof opt, "|r%d;t%la;i%lld", int(so.refine),
                    so.target_residual, (long long)so.max_refine_iters);
      key += opt;
    } else if (kind == RequestKind::Trace) {
      // Every TraceOptions field changes the estimate's bits (seed, probe
      // count, estimator, target, CI level) or its blocking; coalescing
      // across any of them would hand a caller someone else's estimate.
      char opt[96];
      std::snprintf(opt, sizeof opt, "|m%d;p%lld;s%llx;g%d;c%la;b%lld",
                    int(to.method), (long long)to.probes,
                    (unsigned long long)to.seed, int(to.target), to.confidence,
                    (long long)to.block);
      key += opt;
    } else if (kind == RequestKind::Eigs) {
      // σ is deliberately absent: it is forced to −spec.lambda at submit,
      // and λ already keys the batch.
      char opt[96];
      std::snprintf(opt, sizeof opt, "|k%lld;w%d;m%lld;t%la;s%llx",
                    (long long)eo.k, int(eo.which), (long long)eo.max_subspace,
                    eo.tolerance, (unsigned long long)eo.seed);
      key += opt;
    }
    return key;
  }

  // Collects due batches (window expired, size trigger hit, or shutdown
  // flush) and launches each as a TaskGraph on the executor.
  //
  // Coalescing gate: with batching enabled (max_batch_cols > 1) at most
  // ONE sweep per batch key is in flight; a due batch whose key is busy
  // stays open and keeps absorbing arrivals until the running sweep
  // completes. Under load the batch width therefore tracks the arrival
  // rate × sweep time naturally — the window only bounds the wait when
  // the service is idle. With batching disabled every request dispatches
  // independently at full executor parallelism.
  void dispatcher() {
    const bool gated = opts_.max_batch_cols > 1;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      prune_inflight();  // under mu_
      if (stop_ && open_.empty() && ready_.empty()) return;
      const auto now = Clock::now();
      std::vector<std::unique_ptr<Batch>> due;
      auto launchable = [&](const Batch& b) {
        return !gated || busy_.find(b.key) == busy_.end();
      };
      for (auto it = ready_.begin(); it != ready_.end();) {
        if (launchable(**it)) {
          busy_.insert((*it)->key);
          due.push_back(std::move(*it));
          it = ready_.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = open_.begin(); it != open_.end();) {
        Batch& b = *it->second;
        if ((stop_ || now >= b.deadline) && launchable(b)) {
          busy_.insert(b.key);
          due.push_back(std::move(it->second));
          it = open_.erase(it);
        } else {
          ++it;
        }
      }
      if (!due.empty()) {
        lk.unlock();
        for (auto& b : due) launch(std::move(b));
        lk.lock();
        continue;
      }
      // Nothing launchable. Sleep to the next open deadline; with only
      // gate-blocked batches pending, nap briefly (sweep completions
      // notify cv_, so the wait usually ends early and exactly on time).
      auto until = Clock::time_point::max();
      for (const auto& [key, b] : open_)
        if (b->deadline > now && b->deadline < until) until = b->deadline;
      if (until != Clock::time_point::max()) {
        cv_.wait_until(lk, until);
      } else if (!open_.empty() || !ready_.empty()) {
        cv_.wait_for(lk, std::chrono::microseconds(500));
      } else if (!stop_) {
        cv_.wait(lk);
      }
    }
  }

  // Wires the batch's build → retune → sweep TaskGraph and submits it.
  // Costs are coarse priors (cold build ≫ retune ≫ lookup) refined by
  // measured per-column sweep cost, enough for HEFT to keep cold-operator
  // compressions from serializing behind warm sweeps.
  void launch(std::unique_ptr<Batch> owned) {
    Batch* b = owned.get();
    const std::string skey = b->spec.structure_key();
    const bool warm = cache_.contains(skey);
    const double col_cost = sweep_cost_per_col(skey);
    rt::Task* build = b->graph.emplace(
        [this, b](int) {
          try {
            (void)cache_.acquire(b->spec);
          } catch (...) {
            b->build_error = std::current_exception();
          }
        },
        warm ? 1e3 : 1e9, "svc:build");
    rt::Task* retune = b->graph.emplace(
        [this, b](int) {
          if (b->build_error != nullptr) return;
          try {  // pin λ now so the sweep usually finds it resident
            cache_.with_operator(b->spec, [](auto&) {});
          } catch (...) {
            b->build_error = std::current_exception();
          }
        },
        1e5, "svc:retune");
    rt::Task* sweep = b->graph.emplace(
        [this, b](int) { execute(*b); }, col_cost * double(b->cols + 1),
        "svc:sweep");
    b->graph.add_edge(build, retune);
    b->graph.add_edge(retune, sweep);
    b->done = sched_.submit(b->graph);
    std::lock_guard<std::mutex> lk(mu_);
    inflight_.push_back(std::move(owned));
  }

  // Runs on an executor worker: the coalesced gather → blocked sweep →
  // scatter, under the entry's shared lock at the batch's λ.
  void execute(Batch& b) {
    const auto start = Clock::now();
    try {
      if (b.build_error != nullptr) std::rethrow_exception(b.build_error);
      cache_.with_operator(b.spec, [&](typename OperatorCache<T>::Entry& e) {
        sweep(b, *e.op, start);
      });
    } catch (...) {
      // Failed batches count in the histogram too (before the promises
      // fail, for the same stats-visibility reason as the success path).
      record_batch(b);
      const auto err = std::current_exception();
      for (auto& r : b.requests)
        if (r != nullptr) fail(std::move(r), err);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      busy_.erase(b.key);  // reopen the coalescing gate for this key
    }
    cv_.notify_all();  // a gate-blocked batch may be launchable now
    notify_done();
  }

  void sweep(Batch& b, const CompressedOperator<T>& op,
             typename Clock::time_point start) {
    const index_t n = op.size();
    // Shed shape-mismatched requests individually; the rest still batch.
    for (auto& r : b.requests) {
      if (!rhs_free(b.kind) && r->rhs.rows() != n) {
        fail(std::move(r),
             std::make_exception_ptr(DimensionError(
                 "SolveService: rhs has " + std::to_string(r->rhs.rows()) +
                 " rows; operator order is " + std::to_string(n))));
      }
    }
    std::erase_if(b.requests,
                  [](const std::unique_ptr<Request>& r) { return r == nullptr; });
    if (b.requests.empty()) {
      record_batch(b);  // every launched batch lands in the histogram
      return;
    }

    const auto* fact = op.factorizable();
    if (b.kind == RequestKind::Solve || b.kind == RequestKind::Logdet) {
      check<StateError>(fact != nullptr,
                        op.name() + ": backend has no factorization; " +
                            "Solve/Logdet unavailable");
    }  // Trace/Eigs enforce their own needs inside src/spectral/

    double logdet = std::numeric_limits<double>::quiet_NaN();
    spectral::TraceEstimate trace;       // shared Trace result
    spectral::EigsResult<T> eig;         // shared Eigs result
    la::Matrix<T> out;                   // coalesced result block
    std::vector<double> residuals;       // per coalesced column (Solve)
    index_t cols = 0;
    index_t refine_iters = 0;            // refinement sweeps (Solve, mixed)
    if (b.kind == RequestKind::Logdet) {
      logdet = fact->logdet();
    } else if (b.kind == RequestKind::Trace) {
      // Computed ONCE per batch: the key pins every option including the
      // seed, so coalesced requests asked for bit-identical estimates.
      auto ws = pool_.lease();
      trace = spectral::estimate_trace(op, b.trace, &*ws);
    } else if (b.kind == RequestKind::Eigs) {
      // eigs_at is const (solves only) — the entry's shared lock already
      // holds the factorization at λ = −σ, exactly what eigs_at demands.
      auto ws = pool_.lease();
      eig = spectral::eigs_at(op, b.eigs, &*ws);
    } else {
      // Gather the batch's right-hand sides into one N-by-cols block.
      for (const auto& r : b.requests) cols += r->rhs.cols();
      la::Matrix<T> rhs(n, cols);
      index_t at = 0;
      for (const auto& r : b.requests)
        for (index_t j = 0; j < r->rhs.cols(); ++j, ++at)
          std::copy_n(r->rhs.col(j), n, rhs.col(at));

      if (b.kind == RequestKind::Solve) {
        const bool mixed = fact->factorization_stats().precision ==
                           Precision::MixedF32;
        if (mixed && b.solve.refine) {
          // Refinement runs here (not inside fact->solve) so the service
          // can report the iteration count and reuse the refinement's own
          // double-accumulated residual measurements — no second blocked
          // matvec for report_residuals.
          auto ws = pool_.lease();
          const SolveReport rep = refined_solve(
              op, *fact, T(b.spec.lambda), rhs, out, b.solve, &*ws);
          refine_iters = rep.iterations;
          refine_iters_.fetch_add(std::uint64_t(rep.iterations),
                                  std::memory_order_relaxed);
          remember_sweep_cost(b.spec.structure_key(),
                              double(ws->last.flops) / double(cols));
          if (opts_.report_residuals) residuals = rep.column_residuals;
        } else {
          out = fact->solve(rhs, b.solve);  // ONE blocked r-wide sweep
          if (opts_.report_residuals)
            residuals = solve_residuals(b.spec.structure_key(), op,
                                        T(b.spec.lambda), out, rhs);
        }
      } else {
        auto ws = pool_.lease();
        out = op.apply(rhs, *ws);
        remember_sweep_cost(b.spec.structure_key(),
                            double(ws->last.flops) / double(cols));
      }
    }

    // Record batch metrics BEFORE fulfilling any promise: a client that
    // reads stats() right after future.get() must see its own batch.
    record_batch(b);

    // Scatter column ranges back to their requests and fulfil promises.
    const auto end = Clock::now();
    const double sweep_s = std::chrono::duration<double>(end - start).count();
    index_t at = 0;
    for (auto& r : b.requests) {
      ServiceResult<T> res;
      res.logdet = logdet;
      res.batch_cols = rhs_free(b.kind) ? index_t(b.requests.size()) : cols;
      res.refine_iterations = refine_iters;
      res.queue_seconds =
          std::chrono::duration<double>(start - r->enqueued).count();
      res.sweep_seconds = sweep_s;
      if (b.kind == RequestKind::Trace) {
        res.trace = trace;
      } else if (b.kind == RequestKind::Eigs) {
        res.values = eig.vectors;
        res.eigenvalues = eig.values;
        res.residuals = eig.residuals;
        res.eigs_converged = eig.converged;
      } else if (b.kind != RequestKind::Logdet) {
        const index_t w = r->rhs.cols();
        res.values = out.block(0, at, n, w);
        if (!residuals.empty())
          res.residuals.assign(residuals.begin() + at,
                               residuals.begin() + at + w);
        at += w;
      }
      fulfil(std::move(r), std::move(res));
    }
  }

  // ‖(K̃+λI)x_j − b_j‖/‖b_j‖ per column, one blocked matvec for the batch.
  std::vector<double> solve_residuals(const std::string& skey,
                                      const CompressedOperator<T>& op,
                                      T lambda, const la::Matrix<T>& x,
                                      const la::Matrix<T>& rhs) {
    auto ws = pool_.lease();
    la::Matrix<T> ax = op.apply(x, *ws);
    // The residual matvec doubles as the cost probe: measured flops per
    // column refine the HEFT estimate for later sweeps of this structure.
    remember_sweep_cost(skey, double(ws->last.flops) / double(x.cols()));
    std::vector<double> out(std::size_t(x.cols()));
    const index_t n = x.rows();
    for (index_t j = 0; j < x.cols(); ++j) {
      la::axpy(n, lambda, x.col(j), ax.col(j));
      double num = 0;
      for (index_t i = 0; i < n; ++i) {
        const double d = double(ax(i, j)) - double(rhs(i, j));
        num += d * d;
      }
      const double den = la::nrm2(n, rhs.col(j));
      out[std::size_t(j)] = std::sqrt(num) / std::max(den, 1e-300);
    }
    return out;
  }

  // --- completion plumbing -------------------------------------------------

  void fulfil(std::unique_ptr<Request> r, ServiceResult<T> res) {
    latency_.record(std::chrono::duration<double>(Clock::now() - r->enqueued)
                        .count());
    completed_.fetch_add(1, std::memory_order_relaxed);
    r->promise.set_value(std::move(res));
    finish_one();
  }

  void fail(std::unique_ptr<Request> r, std::exception_ptr err) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    r->promise.set_exception(std::move(err));
    finish_one();
  }

  void finish_one() {
    std::lock_guard<std::mutex> lk(mu_);
    pending_ -= 1;
  }

  void notify_done() { done_cv_.notify_all(); }

  void record_batch(const Batch& b) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    const index_t size =
        rhs_free(b.kind) ? index_t(b.requests.size()) : b.cols;
    batched_cols_.fetch_add(std::uint64_t(size), std::memory_order_relaxed);
    std::size_t bucket = 0;
    for (index_t s = size; s > 1 && bucket + 1 < batch_hist_.size(); s >>= 1)
      ++bucket;
    batch_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  // --- sweep cost model ----------------------------------------------------

  double sweep_cost_per_col(const std::string& skey) const {
    std::lock_guard<std::mutex> lk(cost_mu_);
    auto it = sweep_cost_.find(skey);
    return it != sweep_cost_.end() ? it->second : 1e6;
  }
  void remember_sweep_cost(const std::string& skey, double per_col) {
    if (per_col <= 0) return;
    std::lock_guard<std::mutex> lk(cost_mu_);
    sweep_cost_[skey] = per_col;
  }

  // Frees batches whose graph completed. Caller holds mu_.
  void prune_inflight() {
    std::erase_if(inflight_, [](const std::unique_ptr<Batch>& b) {
      return b->done.wait_for(std::chrono::seconds(0)) ==
             std::future_status::ready;
    });
  }

  const Options opts_;
  OperatorCache<T> cache_;
  WorkspacePool<T> pool_;
  rt::Scheduler sched_;

  mutable std::mutex mu_;  // guards open_/inflight_/pending_/stop_
  std::condition_variable cv_;       // wakes the dispatcher
  std::condition_variable done_cv_;  // wakes drain()
  std::unordered_map<std::string, std::unique_ptr<Batch>> open_;
  std::vector<std::unique_ptr<Batch>> ready_;  // closed, awaiting launch
  std::unordered_set<std::string> busy_;  // keys with a sweep in flight
  std::vector<std::unique_ptr<Batch>> inflight_;
  std::size_t pending_ = 0;
  bool stop_ = false;

  mutable std::mutex cost_mu_;
  std::unordered_map<std::string, double> sweep_cost_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_cols_{0};
  std::atomic<std::uint64_t> refine_iters_{0};
  std::atomic<std::uint64_t> trace_requests_{0};
  std::atomic<std::uint64_t> eigs_requests_{0};
  std::array<std::atomic<std::uint64_t>, 8> batch_hist_{};
  LatencyHistogram latency_;

  std::thread dispatcher_;  // last member: joined first at destruction
};

}  // namespace gofmm::service
