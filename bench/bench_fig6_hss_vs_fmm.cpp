// Figure 6 reproduction (#6-#8): HSS (budget 0) versus FMM (budget > 0)
// accuracy/time trade-off on K02, K15 and COVTYPE.
//
// Paper reference: on K02 the HSS error plateaus at 5e-4 and raising the
// rank costs O(s^3); a rank-64 FMM with 3% direct evaluations beats it in
// both accuracy and time. On COVTYPE, s=512 + 3% budget beats the s=2048
// HSS. Here ranks scale down with N but the crossing is the same.
#include "common.hpp"

using namespace gofmm;

namespace {

void sweep(const char* label, const SPDMatrix<float>& k, index_t leaf,
           Table& table) {
  struct Setting {
    index_t rank;
    double budget;
  };
  const Setting settings[] = {{32, 0.0},  {64, 0.0},   {128, 0.0},
                              {32, 0.03}, {32, 0.10},  {64, 0.03},
                              {64, 0.10}, {128, 0.03}};
  for (const auto& s : settings) {
    Config cfg;
    cfg.leaf_size = leaf;
    cfg.max_rank = s.rank;
    cfg.tolerance = 0;  // fixed rank, as in the figure
    cfg.kappa = 32;
    cfg.budget = s.budget;
    cfg.distance = tree::DistanceKind::Angle;
    auto res = bench::run_gofmm(k, cfg, 64);
    table.add_row(
        {label, std::to_string(s.rank),
         Table::num(100.0 * s.budget) + "%", s.budget == 0 ? "HSS" : "FMM",
         Table::sci(res.eps2),
         Table::num(res.compress_seconds + res.eval_seconds),
         Table::num(res.eval_seconds)});
  }
}

}  // namespace

int main() {
  Table table({"matrix", "s", "budget", "mode", "eps2", "total_s", "eval_s"});

  {
    auto k = zoo::make_matrix<float>("K02", 4096);
    sweep("K02", *k, 128, table);
  }
  {
    auto k = zoo::make_matrix<float>("K15", 1600);
    sweep("K15", *k, 128, table);
  }
  {
    auto k = zoo::make_dataset_kernel<float>("COVTYPE", 4096, 0.3);
    sweep("COVTYPE", *k, 256, table);
  }

  std::printf(
      "Figure 6: HSS (budget=0) vs FMM (budget>0), fixed rank s\n"
      "paper: adding direct evaluations beats raising the HSS rank —\n"
      "       better eps2 at lower wall-clock time\n\n");
  table.print();
  return 0;
}
