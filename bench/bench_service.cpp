// Solve-service throughput bench: batched vs unbatched request handling
// under concurrent synthetic traffic.
//
// A fleet of concurrent clients hammers the service with single-column
// solve requests against a small set of cached operators (the serving
// shape: many requests, few operators), switching λ mid-run so the cache's
// refactorize fast path is on the measured path too. The workload runs
// twice on identical traffic:
//
//   batched   — the real service policy: requests against the same
//               (structure, λ) coalesce inside `batch_window` into one
//               blocked multi-rhs ULV sweep (r-wide GEMMs).
//   unbatched — max_batch_cols = 1: every request gets its own sweep, the
//               per-request cost a naive serving loop would pay.
//
// The blocked sweep streams the factors once for r columns instead of r
// times, so batched throughput must win clearly; the nightly CI gate
// (scripts/bench_compare.py, suite "service") requires ratio >= 3 at 16
// clients. Per-request latency percentiles come from the service's own
// ServiceStats histogram — the bench measures the metrics surface as a
// side effect.
//
//   $ ./bench_service [n] [clients] [requests-per-client] [--json FILE]
//                     [datasets...]
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "service/solve_service.hpp"

using namespace gofmm;

namespace {

struct ModeResult {
  std::string mode;
  double wall_s = 0;
  double req_per_s = 0;
  double avg_batch_cols = 0;
  double p50_ms = 0, p99_ms = 0;
  std::uint64_t builds = 0, retunes = 0, batches = 0, completed = 0;
  double max_resid = 0;
};

service::OperatorCache<double>::Builder zoo_builder(index_t n) {
  return [n](const service::OperatorSpec& spec)
             -> std::shared_ptr<CompressedOperator<double>> {
    auto k = std::shared_ptr<const SPDMatrix<double>>(
        zoo::make_matrix<double>(spec.dataset, n));
    return std::shared_ptr<CompressedOperator<double>>(
        CompressedMatrix<double>::compress_unique(std::move(k), spec.config));
  };
}

Config service_config() {
  // Pure-HSS (budget 0) so every dataset factors exactly; bench-sized
  // compression tolerance.
  return Config::defaults()
      .with_leaf_size(128)
      .with_max_rank(128)
      .with_tolerance(1e-5)
      .with_budget(0.0);
}

// One traffic run: `clients` open-loop threads, each submitting
// `per_client` single-column solves against its dataset up front and then
// draining the futures, with a λ switch at half time (exercising the
// retune path in-band). Open-loop traffic is the serving shape that makes
// coalescing matter: requests arrive independent of service latency, so
// the batched mode absorbs the backlog into wide sweeps while the
// unbatched mode pays one factor stream per column. Returns wall-clock
// and the service's own metrics.
ModeResult run_mode(const std::string& mode, bool batched, index_t n,
                    int clients, int per_client,
                    const std::vector<std::string>& datasets) {
  typename service::SolveService<double>::Options opts;
  opts.batch_window = std::chrono::microseconds(batched ? 1000 : 0);
  opts.max_batch_cols = batched ? 64 : 1;
  opts.num_workers = 4;  // same executor width in both modes
  opts.report_residuals = true;
  service::SolveService<double> svc(zoo_builder(n), opts);

  const double lambdas[2] = {1e-2, 1e-1};
  // Warm the cache: builds are measured by bench_solve, not here — this
  // bench isolates request handling on warm operators.
  for (const auto& ds : datasets) {
    service::OperatorSpec spec;
    spec.dataset = ds;
    spec.config = service_config();
    spec.lambda = lambdas[0];
    (void)svc.cache().acquire(spec);
  }

  std::atomic<std::uint64_t> resid_bits{0};  // max residual, bit-packed
  Timer timer;
  std::vector<std::thread> fleet;
  fleet.reserve(std::size_t(clients));
  for (int c = 0; c < clients; ++c)
    fleet.emplace_back([&, c] {
      service::OperatorSpec spec;
      spec.dataset = datasets[std::size_t(c) % datasets.size()];
      spec.config = service_config();
      std::vector<std::future<service::ServiceResult<double>>> pending;
      pending.reserve(std::size_t(per_client));
      for (int r = 0; r < per_client; ++r) {
        spec.lambda = lambdas[r < per_client / 2 ? 0 : 1];
        const auto b = la::Matrix<double>::random_normal(
            n, 1, std::uint64_t(1000 + c * per_client + r));
        pending.push_back(svc.submit_solve(spec, b));
      }
      for (auto& f : pending) {
        service::ServiceResult<double> res = f.get();
        if (!res.residuals.empty()) {
          // max-update via CAS on the bit pattern (doubles here are >= 0).
          std::uint64_t seen = resid_bits.load();
          std::uint64_t mine;
          std::memcpy(&mine, &res.residuals[0], sizeof mine);
          while (mine > seen && !resid_bits.compare_exchange_weak(seen, mine)) {
          }
        }
      }
    });
  for (auto& th : fleet) th.join();
  svc.drain();
  const double wall = timer.seconds();

  const service::ServiceStats s = svc.stats();
  ModeResult out;
  out.mode = mode;
  out.wall_s = wall;
  out.req_per_s = double(clients) * double(per_client) / wall;
  out.avg_batch_cols = s.avg_batch_cols();
  out.p50_ms = s.latency_p50_s * 1e3;
  out.p99_ms = s.latency_p99_s * 1e3;
  out.builds = s.cache.builds;
  out.retunes = s.cache.retunes;
  out.batches = s.batches;
  out.completed = s.completed;
  const std::uint64_t bits = resid_bits.load();
  std::memcpy(&out.max_resid, &bits, sizeof bits);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  index_t n = 1024;
  int clients = 16;
  int per_client = 12;
  std::string json_path;
  std::vector<std::string> datasets;
  {
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "usage: bench_service [n] [clients] "
                       "[requests-per-client] [--json FILE] [datasets...]\n"
                       "--json requires a file path\n");
          return 1;
        }
        json_path = argv[++i];
        continue;
      }
      positional.emplace_back(argv[i]);
    }
    if (!positional.empty()) n = index_t(std::atoll(positional[0].c_str()));
    if (positional.size() > 1) clients = std::atoi(positional[1].c_str());
    if (positional.size() > 2) per_client = std::atoi(positional[2].c_str());
    for (std::size_t i = 3; i < positional.size(); ++i)
      datasets.push_back(positional[i]);
  }
  if (datasets.empty()) datasets = {"K04", "K07", "G02", "COVTYPE"};

  std::printf("solve service: n=%lld, %d clients x %d requests, %zu "
              "operators, lambda switch at half time\n\n",
              static_cast<long long>(n), clients, per_client, datasets.size());

  const ModeResult un =
      run_mode("unbatched", false, n, clients, per_client, datasets);
  const ModeResult ba =
      run_mode("batched", true, n, clients, per_client, datasets);
  const double ratio = ba.req_per_s / std::max(un.req_per_s, 1e-12);

  Table table({"mode", "wall_s", "req_per_s", "avg_batch", "p50_ms", "p99_ms",
               "batches", "builds", "retunes", "max_resid"});
  for (const ModeResult* m : {&un, &ba})
    table.add_row({m->mode, Table::num(m->wall_s), Table::num(m->req_per_s),
                   Table::num(m->avg_batch_cols), Table::num(m->p50_ms),
                   Table::num(m->p99_ms), std::to_string(m->batches),
                   std::to_string(m->builds), std::to_string(m->retunes),
                   Table::sci(m->max_resid)});
  table.print();
  std::printf("\nbatched/unbatched throughput ratio: %.2fx\n", ratio);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"bench_service\",\n  \"n\": " << n
        << ",\n  \"clients\": " << clients
        << ",\n  \"requests_per_client\": " << per_client
        << ",\n  \"operators\": " << datasets.size() << ",\n  \"modes\": [\n";
    const ModeResult* modes[] = {&un, &ba};
    for (std::size_t i = 0; i < 2; ++i) {
      const ModeResult& m = *modes[i];
      char line[512];
      std::snprintf(
          line, sizeof line,
          "    {\"mode\": \"%s\", \"wall_s\": %.6e, \"req_per_s\": %.3f, "
          "\"avg_batch_cols\": %.3f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
          "\"batches\": %llu, \"builds\": %llu, \"retunes\": %llu, "
          "\"max_resid\": %.6e}%s\n",
          m.mode.c_str(), m.wall_s, m.req_per_s, m.avg_batch_cols, m.p50_ms,
          m.p99_ms, static_cast<unsigned long long>(m.batches),
          static_cast<unsigned long long>(m.builds),
          static_cast<unsigned long long>(m.retunes), m.max_resid,
          i + 1 < 2 ? "," : "");
      out << line;
    }
    char tail[128];
    std::snprintf(tail, sizeof tail, "  ],\n  \"ratio\": %.3f\n}\n", ratio);
    out << tail;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
