// Spectral-workloads bench: compressed eigensolver vs dense reference,
// stochastic trace/logdet estimators with their confidence intervals.
//
// Two sections, both emitted to --json for the nightly gate
// (scripts/bench_compare.py --suite spectral):
//
//   eigs  — end-to-end wall time of "give me the 10 extreme eigenpairs
//           from the entry oracle": compress + factorize + two Lanczos
//           runs (shift-invert at 0 for the bottom, plain for the top)
//           against the dense path (materialize n² entries + one O(n³)
//           symmetric eigensolve, eigenvalues only). The nightly gate
//           requires >= 5x at N = 4096 — the hierarchical solver's whole
//           point — plus the residual contract ‖K̃v−λv‖ <= 1e-8·‖K̃‖ and
//           agreement of the extreme eigenvalues with the dense spectrum
//           to compression accuracy.
//   trace — Hutchinson (128 probes, 99% CI), Hutch++ under the same
//           budget, and SLQ logdet on the factorized operator. The gate
//           checks the CI COVERS the exact oracle trace, Hutch++ lands
//           within 2%, and SLQ within 5% of the factorization's exact
//           log-determinant.
//
//   $ ./bench_spectral [n] [k] [--json FILE] [matrices...]
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "la/eigen.hpp"
#include "spectral/eigs.hpp"
#include "spectral/trace.hpp"

using namespace gofmm;

namespace {

struct EigsRow {
  std::string matrix;
  double eigs_s = 0;    // compress + factorize + both Lanczos runs
  double dense_s = 0;   // n² oracle reads + syev (values only)
  double speedup = 0;
  double max_rel_residual = 0;
  double dense_drift = 0;  // max relative |λ_eigs − λ_dense| at the extremes
  int converged = 0;
  double lam_min = 0, lam_max = 0;
};

struct TraceRow {
  std::string matrix;
  index_t probes = 0;
  double exact = 0;
  double estimate = 0, ci_low = 0, ci_high = 0;
  int covered = 0;
  double hpp_rel_err = 0;
  double slq_rel_err = 0;
  double trace_s = 0;
};

// Budget MUST be 0 for the shift-invert path: budget > 0 adds near-field
// terms to apply() that the ULV factorization never sees, so solve() would
// invert a different operator than apply() evaluates and the eigenpair
// residuals floor at the budget term's magnitude (O(1) relative at
// N = 4096). See docs/SPECTRAL.md "Factorization consistency".
Config bench_config() {
  return Config::defaults()
      .with_leaf_size(128)
      .with_max_rank(128)
      .with_tolerance(1e-7)
      .with_kappa(32)
      .with_budget(0.0);
}

}  // namespace

int main(int argc, char** argv) {
  index_t n = 4096;
  index_t k_pairs = 10;
  std::string json_path;
  std::vector<std::string> matrices;
  {
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "usage: bench_spectral [n] [k] [--json FILE] "
                       "[matrices...]\n--json requires a file path\n");
          return 1;
        }
        json_path = argv[++i];
        continue;
      }
      positional.emplace_back(argv[i]);
    }
    if (!positional.empty()) n = index_t(std::atoll(positional[0].c_str()));
    if (positional.size() > 1)
      k_pairs = index_t(std::atoll(positional[1].c_str()));
    for (std::size_t i = 2; i < positional.size(); ++i)
      matrices.push_back(positional[i]);
  }
  // K04 and K07 both separate 10 pairs at either end under this config;
  // wide-bandwidth entries (K02) have a near-degenerate bottom tail at
  // N = 4096 that shift-invert cannot split within the subspace cap.
  if (matrices.empty()) matrices = {"K04", "K07"};

  std::printf("spectral workloads: n=%lld, k=%lld extreme pairs, "
              "%zu matrices\n\n",
              static_cast<long long>(n), static_cast<long long>(k_pairs),
              matrices.size());

  std::vector<EigsRow> eigs_rows;
  std::vector<TraceRow> trace_rows;

  for (const std::string& name : matrices) {
    std::shared_ptr<const SPDMatrix<double>> k(
        zoo::make_matrix<double>(name, n));
    const index_t nn = k->size();  // grid entries may round n down

    // --- compressed path: oracle -> eigenpairs -------------------------
    Timer timer;
    auto op = CompressedMatrix<double>::compress_unique(k, bench_config());
    const spectral::EigsOptions eo = spectral::EigsOptions()
                                         .with_k(k_pairs)
                                         .with_max_subspace(192);
    auto top =
        spectral::eigs(*op, k_pairs, spectral::Which::Largest, 0.0, eo);
    auto bottom =
        spectral::eigs(*op, k_pairs, spectral::Which::Smallest, 0.0, eo);
    EigsRow row;
    row.eigs_s = timer.seconds();
    row.matrix = name;
    row.converged = top.converged && bottom.converged ? 1 : 0;
    row.lam_max = top.values.empty() ? 0.0 : top.values[0];
    row.lam_min = bottom.values.empty() ? 0.0 : bottom.values[0];
    const double norm = std::abs(row.lam_max);
    for (const auto* r : {&top, &bottom})
      for (double res : r->residuals)
        row.max_rel_residual =
            std::max(row.max_rel_residual, res / std::max(norm, 1e-300));

    // --- dense reference: oracle -> eigenvalues ------------------------
    timer.reset();
    la::Matrix<double> dense(nn, nn);
    for (index_t j = 0; j < nn; ++j)
      for (index_t i = j; i < nn; ++i)  // syev reads the lower triangle
        dense(i, j) = k->entry(i, j);
    std::vector<double> w;
    const bool dense_ok = la::syev(dense, w);
    row.dense_s = timer.seconds();
    row.speedup = row.dense_s / std::max(row.eigs_s, 1e-12);
    if (dense_ok && !w.empty()) {
      // The compressed operator's extremes vs the oracle's: they differ
      // by the compression error, not the solver error.
      row.dense_drift = std::max(
          std::abs(row.lam_min - w.front()) / std::max(norm, 1e-300),
          std::abs(row.lam_max - w.back()) / std::max(norm, 1e-300));
    }
    eigs_rows.push_back(row);

    // --- stochastic trace / logdet on the compressed operator ----------
    TraceRow tr;
    tr.matrix = name;
    tr.probes = 128;
    timer.reset();
    double exact = 0;
    for (index_t i = 0; i < nn; ++i) exact += k->entry(i, i);
    tr.exact = exact;
    const spectral::TraceOptions to =
        spectral::TraceOptions::defaults().with_probes(tr.probes).with_seed(
            5);
    const spectral::TraceEstimate hutch = spectral::hutchinson_trace(
        *op,
        spectral::TraceOptions(to).with_method(
            spectral::TraceMethod::Hutchinson));
    tr.estimate = hutch.estimate;
    tr.ci_low = hutch.ci_low;
    tr.ci_high = hutch.ci_high;
    tr.covered = hutch.ci_low <= exact && exact <= hutch.ci_high ? 1 : 0;
    const spectral::TraceEstimate hpp = spectral::hutchpp_trace(*op, to);
    tr.hpp_rel_err = std::abs(hpp.estimate - exact) / std::abs(exact);
    // SLQ logdet vs the factorization's exact one, at a λ that keeps the
    // compressed operator safely positive definite: compression error can
    // push the near-zero tail of the spectrum slightly negative, so start
    // at a λmax-relative shift and escalate until the factorization
    // certifies positive definiteness.
    double lambda = 1e-3 * std::max(std::abs(row.lam_max), 1.0);
    op->factorizable()->refactorize(lambda);
    while (!op->factorizable()->factorization_stats().positive_definite) {
      lambda *= 10.0;
      op->factorizable()->refactorize(lambda);
    }
    const double ld_exact = op->factorizable()->logdet();
    const spectral::TraceEstimate ld = spectral::slq_logdet(
        *op, lambda, spectral::TraceOptions(to).with_probes(32), 60);
    tr.slq_rel_err =
        std::abs(ld.estimate - ld_exact) / std::max(std::abs(ld_exact), 1e-300);
    tr.trace_s = timer.seconds();
    trace_rows.push_back(tr);
  }

  Table eigs_table({"matrix", "eigs_s", "dense_s", "speedup", "max_rel_res",
                    "dense_drift", "conv", "lam_min", "lam_max"});
  for (const EigsRow& r : eigs_rows)
    eigs_table.add_row({r.matrix, Table::num(r.eigs_s), Table::num(r.dense_s),
                        Table::num(r.speedup), Table::sci(r.max_rel_residual),
                        Table::sci(r.dense_drift), std::to_string(r.converged),
                        Table::sci(r.lam_min), Table::sci(r.lam_max)});
  eigs_table.print();
  std::printf("\n");
  Table trace_table({"matrix", "probes", "exact", "estimate", "covered",
                     "hpp_rel_err", "slq_rel_err", "trace_s"});
  for (const TraceRow& r : trace_rows)
    trace_table.add_row({r.matrix, std::to_string(r.probes),
                         Table::sci(r.exact), Table::sci(r.estimate),
                         std::to_string(r.covered), Table::sci(r.hpp_rel_err),
                         Table::sci(r.slq_rel_err), Table::num(r.trace_s)});
  trace_table.print();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"bench_spectral\",\n  \"n\": " << n
        << ",\n  \"k\": " << k_pairs << ",\n  \"eigs\": [\n";
    for (std::size_t i = 0; i < eigs_rows.size(); ++i) {
      const EigsRow& r = eigs_rows[i];
      char line[512];
      std::snprintf(
          line, sizeof line,
          "    {\"matrix\": \"%s\", \"eigs_s\": %.6e, \"dense_s\": %.6e, "
          "\"speedup\": %.3f, \"max_rel_residual\": %.6e, "
          "\"dense_drift\": %.6e, \"converged\": %d, \"lam_min\": %.9e, "
          "\"lam_max\": %.9e}%s\n",
          r.matrix.c_str(), r.eigs_s, r.dense_s, r.speedup,
          r.max_rel_residual, r.dense_drift, r.converged, r.lam_min,
          r.lam_max, i + 1 < eigs_rows.size() ? "," : "");
      out << line;
    }
    out << "  ],\n  \"trace\": [\n";
    for (std::size_t i = 0; i < trace_rows.size(); ++i) {
      const TraceRow& r = trace_rows[i];
      char line[512];
      std::snprintf(
          line, sizeof line,
          "    {\"matrix\": \"%s\", \"probes\": %lld, \"exact\": %.9e, "
          "\"estimate\": %.9e, \"ci_low\": %.9e, \"ci_high\": %.9e, "
          "\"covered\": %d, \"hpp_rel_err\": %.6e, \"slq_rel_err\": %.6e, "
          "\"trace_s\": %.6e}%s\n",
          r.matrix.c_str(), static_cast<long long>(r.probes), r.exact,
          r.estimate, r.ci_low, r.ci_high, r.covered, r.hpp_rel_err,
          r.slq_rel_err, r.trace_s, i + 1 < trace_rows.size() ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  int failures = 0;
  for (const EigsRow& r : eigs_rows)
    if (!r.converged) ++failures;
  for (const TraceRow& r : trace_rows)
    if (!r.covered) ++failures;
  return failures == 0 ? 0 : 1;
}
