// Solve-path shoot-out: unpreconditioned CG vs ULV-preconditioned CG vs
// the hierarchical direct solves (GOFMM ULV, randomized-HSS ULV, HODLR) —
// every direct row runs through the one shared ULV engine — plus a
// batched-vs-sequential multi-RHS comparison.
//
// For each zoo matrix the bench compresses a fine-tolerance operator,
// builds the coarse factorized preconditioner (make_preconditioner), and
// reports per method: setup seconds (compress and/or factorize), solve
// seconds, CG iterations, the achieved relative residual, plus the
// factorization's flop/memory accounting and logdet. The cg/pcg rows
// measure the residual against the shared fine operator; the *-direct
// rows measure it against the solver's OWN compression (that is the
// quantity a direct factorization controls — its gap to the fine
// operator is the compression-tolerance difference, not solver error).
//
// The batch section times ONE blocked solve of 16 right-hand sides
// against 16 sequential single-RHS solves on the same ULV factorization:
// the blocked sweep runs r-wide GEMMs, so it must win clearly (the CI
// bench-regression job gates on this ratio via scripts/bench_compare.py).
//
// The λ-sweep section retunes the same factorization across 8 λ values
// twice: once through refactorize(λ) and once through full factorize(λ)
// rebuilds — the kernel-regression retuning workload. Under the
// orthogonal-ULV engine λI commutes through the stored per-node
// rotations, so a retune re-factors only small rotated diagonal blocks
// (no view walk, oracle reads, basis QR, or Gram chain) while staying
// bit-identical per λ; the ratio is machine-independent, measures ~4-5×
// on the zoo configs, and is gated at ≥3× by scripts/bench_compare.py
// --min-retune-speedup (see docs/RETUNING.md for the cost model).
//
// The mixed-precision section refactors the direct compression with
// Precision::MixedF32 (float-stored factors) and reports resident factor
// bytes, refine-free narrow-sweep time, and a refined solve's iteration
// count and final residual against Precision::Double. CI gates the memory
// ratio at ≥1.7× and the sweep speedup at ≥1.3× (nightly, via
// scripts/bench_compare.py --suite solve).
//
//   $ ./bench_solve [n] [rhs] [--json FILE] [matrices...]
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "bench/common.hpp"
#include "core/factorization.hpp"
#include "core/solvers.hpp"
#include "la/qr.hpp"

using namespace gofmm;

namespace {

constexpr index_t kBatchRhs = 16;

struct JsonEntry {
  std::string matrix, method;
  double setup_s = 0, solve_s = 0;
  index_t iters = 0;
  double resid = 0;
};

struct BatchEntry {
  std::string matrix;
  double batch_s = 0, seq_s = 0, speedup = 0;
};

constexpr index_t kSweepLambdas = 8;

struct SweepEntry {
  std::string matrix;
  double refactorize_s = 0, full_s = 0, speedup = 0;
};

constexpr index_t kNarrowSweeps = 16;

struct NarrowEntry {
  std::string matrix;
  double cached_s = 0, rebuilt_s = 0, speedup = 0;
  std::uint64_t larft_calls = 0;
};

constexpr index_t kMixedSweeps = 16;

struct MixedEntry {
  std::string matrix;
  std::uint64_t f64_bytes = 0, f32_bytes = 0;
  double memory_ratio = 0;
  double f64_sweep_s = 0, f32_sweep_s = 0, sweep_speedup = 0;
  index_t refine_iters = 0;
  double refined_resid = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> names;
  std::string json_path;
  index_t n = 2048;
  index_t rhs = 4;
  {
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr,
                       "usage: bench_solve [n] [rhs] [--json FILE] "
                       "[matrices...]\n--json requires a file path\n");
          return 1;
        }
        json_path = argv[++i];
        continue;
      }
      positional.emplace_back(argv[i]);
    }
    if (!positional.empty()) n = index_t(std::atoll(positional[0].c_str()));
    if (positional.size() > 1)
      rhs = index_t(std::atoll(positional[1].c_str()));
    for (std::size_t i = 2; i < positional.size(); ++i)
      names.push_back(positional[i]);
  }
  if (names.empty()) names = {"K04", "K07", "G02", "COVTYPE"};

  Table table({"matrix", "method", "setup_s", "solve_s", "iters", "resid",
               "logdet", "fact_GF", "fact_MB"});
  Table batch_table(
      {"matrix", "rhs", "batch16_s", "seq16x1_s", "speedup"});
  Table sweep_table(
      {"matrix", "lambdas", "refactorize_s", "full_s", "speedup"});
  Table narrow_table({"matrix", "sweeps", "cached_s", "rebuilt_s", "speedup",
                      "larft_calls"});
  Table mixed_table({"matrix", "f64_MB", "f32_MB", "mem_ratio", "f64_sweep_s",
                     "f32_sweep_s", "sweep_speedup", "refine_iters",
                     "refined_resid"});
  std::vector<JsonEntry> json_entries;
  std::vector<BatchEntry> batch_entries;
  std::vector<SweepEntry> sweep_entries;
  std::vector<NarrowEntry> narrow_entries;
  std::vector<MixedEntry> mixed_entries;

  for (const std::string& name : names) {
    std::shared_ptr<SPDMatrix<double>> k = zoo::make_matrix<double>(name, n);
    const index_t actual_n = k->size();
    const double lambda = 0.5;
    la::Matrix<double> b =
        la::Matrix<double>::random_normal(actual_n, rhs, 1009);

    // Fine operator shared by both CG variants.
    Timer t;
    auto kc = CompressedMatrix<double>::compress(
        k, Config::defaults()
               .with_leaf_size(128)
               .with_max_rank(128)
               .with_tolerance(1e-7)
               .with_budget(0.03));
    const double fine_s = t.seconds();

    // One direct-solve measurement row, shared by every Factorizable
    // backend (all of them run the same shared ULV engine).
    auto direct_row = [&](const std::string& method,
                          const std::string& json_method,
                          const CompressedOperator<double>& op,
                          const Factorizable<double>& f, double setup_s) {
      const FactorizationStats fs = f.factorization_stats();
      Timer ts;
      la::Matrix<double> x = f.solve(b);
      const double solve_s = ts.seconds();
      double ld = 0;
      try {
        ld = f.logdet();
      } catch (const StateError&) {
        ld = std::nan("");  // factored operator came out indefinite
      }
      const double resid = operator_residual(op, lambda, b, x);
      table.add_row(
          {name, method, Table::num(setup_s), Table::num(solve_s), "1",
           Table::sci(resid), Table::num(ld, 6),
           Table::num(double(fs.flops) * 1e-9 / std::max(fs.seconds, 1e-12)),
           Table::num(double(fs.memory_bytes) / 1e6)});
      json_entries.push_back({name, json_method, setup_s, solve_s, 1, resid});
    };

    {
      la::Matrix<double> x;
      t.reset();
      const SolveReport rep =
          conjugate_gradient<double>(
              kc, lambda, b, x,
              SolveOptions::defaults().with_max_iterations(1000));
      const double solve_s = t.seconds();
      const double resid = operator_residual(kc, lambda, b, x);
      table.add_row({name, "cg", Table::num(fine_s), Table::num(solve_s),
                     std::to_string(rep.iterations), Table::sci(resid), "-",
                     "-", "-"});
      json_entries.push_back(
          {name, "cg", fine_s, solve_s, rep.iterations, resid});
    }

    {
      t.reset();
      auto prec = make_preconditioner<double>(k, lambda);
      const double prec_s = t.seconds();
      const FactorizationStats fs = prec->factorization_stats();
      la::Matrix<double> x;
      t.reset();
      const SolveReport rep =
          preconditioned_solve<double>(
              kc, lambda, b, x, *prec,
              SolveOptions::defaults().with_max_iterations(1000));
      const double solve_s = t.seconds();
      const double resid = operator_residual(kc, lambda, b, x);
      table.add_row(
          {name, "pcg(ulv)", Table::num(fine_s + prec_s), Table::num(solve_s),
           std::to_string(rep.iterations), Table::sci(resid),
           Table::num(prec->logdet(), 6),
           Table::num(double(fs.flops) * 1e-9 / std::max(fs.seconds, 1e-12)),
           Table::num(double(fs.memory_bytes) / 1e6)});
      json_entries.push_back(
          {name, "pcg_ulv", fine_s + prec_s, solve_s, rep.iterations, resid});
    }

    {
      // Direct ULV solve of a tight pure-HSS compression (no outer CG).
      t.reset();
      auto direct = CompressedMatrix<double>::compress_unique(
          k, Config::defaults()
                 .with_leaf_size(128)
                 .with_max_rank(128)
                 .with_tolerance(1e-7)
                 .with_budget(0.0));
      direct->factorize(lambda);
      const double setup_s = t.seconds();
      direct_row("ulv-direct", "ulv_direct", *direct, *direct, setup_s);

      // Batched multi-RHS: ONE blocked 16-wide sweep vs 16 sequential
      // single-RHS sweeps on the same factorization.
      la::Matrix<double> bb =
          la::Matrix<double>::random_normal(actual_n, kBatchRhs, 2027);
      t.reset();
      la::Matrix<double> xb = direct->solve(bb);
      const double batch_s = t.seconds();
      t.reset();
      for (index_t j = 0; j < kBatchRhs; ++j) {
        la::Matrix<double> bj(actual_n, 1);
        std::copy_n(bb.col(j), actual_n, bj.col(0));
        la::Matrix<double> xj = direct->solve(bj);
        // Fold a column back in so the loop cannot be optimised away.
        std::copy_n(xj.col(0), actual_n, xb.col(j));
      }
      const double seq_s = t.seconds();
      const double speedup = seq_s / std::max(batch_s, 1e-12);
      batch_table.add_row({name, std::to_string(kBatchRhs),
                           Table::num(batch_s), Table::num(seq_s),
                           Table::num(speedup)});
      batch_entries.push_back({name, batch_s, seq_s, speedup});

      // Narrow-rhs (r = 1) sweep: repeated single-RHS solves, the workload
      // dominated by rotation application. The cached run applies the
      // stored geqrt-form QrFactors (zero larft rebuilds — asserted via
      // the counter and gated in CI); the rebuilt run forces the
      // T-rebuild-per-application path the cache replaced. Both produce
      // bit-identical solutions, so the ratio is pure larft overhead.
      la::Matrix<double> b1(actual_n, 1);
      std::copy_n(bb.col(0), actual_n, b1.col(0));
      la::larft_calls_reset();
      t.reset();
      for (index_t s = 0; s < kNarrowSweeps; ++s) {
        la::Matrix<double> x1 = direct->solve(b1);
        std::copy_n(x1.col(0), actual_n, b1.col(0));
      }
      const double cached_s = t.seconds();
      const std::uint64_t larft_n = la::larft_calls();
      la::qr_set_force_rebuild(true);
      t.reset();
      for (index_t s = 0; s < kNarrowSweeps; ++s) {
        la::Matrix<double> x1 = direct->solve(b1);
        std::copy_n(x1.col(0), actual_n, b1.col(0));
      }
      const double rebuilt_s = t.seconds();
      la::qr_set_force_rebuild(false);
      const double narrow_speedup = rebuilt_s / std::max(cached_s, 1e-12);
      narrow_table.add_row({name, std::to_string(kNarrowSweeps),
                            Table::num(cached_s), Table::num(rebuilt_s),
                            Table::num(narrow_speedup),
                            std::to_string(larft_n)});
      narrow_entries.push_back(
          {name, cached_s, rebuilt_s, narrow_speedup, larft_n});

      // λ-sweep retune: the same 8 geometric λ values served once by
      // refactorize() (rotated diagonal block re-factorization only) and
      // once by full factorize() rebuilds (view + oracle + basis QR +
      // rotations each time).
      double lambdas[kSweepLambdas];
      for (index_t i = 0; i < kSweepLambdas; ++i)
        lambdas[i] = lambda * double(1 << i);
      t.reset();
      for (index_t i = 0; i < kSweepLambdas; ++i)
        direct->refactorize(lambdas[i]);
      const double retune_s = t.seconds();
      t.reset();
      for (index_t i = 0; i < kSweepLambdas; ++i)
        direct->factorize(lambdas[i]);
      const double full_s = t.seconds();
      const double sweep_speedup = full_s / std::max(retune_s, 1e-12);
      sweep_table.add_row({name, std::to_string(kSweepLambdas),
                           Table::num(retune_s), Table::num(full_s),
                           Table::num(sweep_speedup)});
      sweep_entries.push_back({name, retune_s, full_s, sweep_speedup});

      // Mixed precision: the same structure factored with double-stored vs
      // float-stored factors. Resident factor bytes must drop ~2×, and the
      // refine-free backward/forward sweeps — bandwidth-bound — must speed
      // up accordingly. A final refined solve shows the accuracy story:
      // a handful of double-accumulated correction sweeps recover the
      // double-solve residual from the float factors.
      MixedEntry me;
      me.matrix = name;
      const SolveOptions no_refine = SolveOptions::defaults().with_refine(
          false);
      la::Matrix<double> bm(actual_n, 1);
      std::copy_n(bb.col(0), actual_n, bm.col(0));

      direct->factorize(lambda);  // back to Double at the base λ
      me.f64_bytes = direct->factorization_stats().memory_bytes;
      t.reset();
      for (index_t s = 0; s < kMixedSweeps; ++s)
        (void)direct->solve(bm, no_refine);
      me.f64_sweep_s = t.seconds();

      direct->factorize(lambda, FactorizeOptions::defaults().with_precision(
                                    Precision::MixedF32));
      me.f32_bytes = direct->factorization_stats().memory_bytes;
      t.reset();
      for (index_t s = 0; s < kMixedSweeps; ++s)
        (void)direct->solve(bm, no_refine);
      me.f32_sweep_s = t.seconds();

      me.memory_ratio = double(me.f64_bytes) / std::max<double>(
                                                   double(me.f32_bytes), 1.0);
      me.sweep_speedup = me.f64_sweep_s / std::max(me.f32_sweep_s, 1e-12);
      {
        la::Matrix<double> xr;
        const SolveReport rrep =
            refined_solve(*direct, *direct, lambda, bm, xr);
        me.refine_iters = rrep.iterations;
        me.refined_resid = rrep.relative_residual;
      }
      direct->factorize(lambda);  // restore the double factors

      mixed_table.add_row(
          {name, Table::num(double(me.f64_bytes) / 1e6),
           Table::num(double(me.f32_bytes) / 1e6), Table::num(me.memory_ratio),
           Table::num(me.f64_sweep_s), Table::num(me.f32_sweep_s),
           Table::num(me.sweep_speedup), std::to_string(me.refine_iters),
           Table::sci(me.refined_resid)});
      mixed_entries.push_back(me);
    }

    {
      // Randomized-HSS direct solver through the same shared ULV engine.
      baseline::RandHssOptions so;
      so.leaf_size = 128;
      so.max_rank = 128;
      so.tolerance = 1e-7;
      t.reset();
      baseline::RandHss<double> rh(*k, so);
      rh.factorize(lambda);
      direct_row("rand_hss-direct", "rand_hss_direct", rh, rh, t.seconds());
    }

    {
      // HODLR direct solver — the engine's Explicit-basis path.
      baseline::HodlrOptions ho;
      ho.leaf_size = 128;
      ho.tolerance = 1e-7;
      ho.max_rank = 256;
      t.reset();
      baseline::Hodlr<double> h(*k, ho);
      h.factorize(lambda);
      direct_row("hodlr-direct", "hodlr_direct", h, h, t.seconds());
    }
  }

  table.print();
  std::printf("\nBatched multi-RHS solve (one %lld-wide sweep vs %lld "
              "single-RHS sweeps, ulv-direct):\n",
              static_cast<long long>(kBatchRhs),
              static_cast<long long>(kBatchRhs));
  batch_table.print();
  std::printf("\nLambda-sweep retune (%lld lambda values, refactorize vs "
              "full factorize, ulv-direct):\n",
              static_cast<long long>(kSweepLambdas));
  sweep_table.print();
  std::printf("\nNarrow-rhs r=1 sweep (%lld single-RHS solves, cached "
              "QrFactors vs forced larft rebuild, ulv-direct):\n",
              static_cast<long long>(kNarrowSweeps));
  narrow_table.print();
  std::printf("\nMixed precision (float-stored vs double-stored factors, "
              "%lld refine-free r=1 sweeps each; refined solve recovers the "
              "double residual, ulv-direct):\n",
              static_cast<long long>(kMixedSweeps));
  mixed_table.print();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"bench_solve\",\n  \"n\": " << n
        << ",\n  \"rhs\": " << rhs << ",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < json_entries.size(); ++i) {
      const JsonEntry& e = json_entries[i];
      char line[256];
      std::snprintf(line, sizeof line,
                    "    {\"matrix\": \"%s\", \"method\": \"%s\", "
                    "\"setup_s\": %.6e, \"solve_s\": %.6e, \"iters\": %lld, "
                    "\"resid\": %.6e}%s\n",
                    e.matrix.c_str(), e.method.c_str(), e.setup_s, e.solve_s,
                    static_cast<long long>(e.iters), e.resid,
                    i + 1 < json_entries.size() ? "," : "");
      out << line;
    }
    out << "  ],\n  \"batched\": [\n";
    for (std::size_t i = 0; i < batch_entries.size(); ++i) {
      const BatchEntry& e = batch_entries[i];
      char line[256];
      std::snprintf(line, sizeof line,
                    "    {\"matrix\": \"%s\", \"rhs\": %lld, \"batch_s\": "
                    "%.6e, \"seq_s\": %.6e, \"speedup\": %.3f}%s\n",
                    e.matrix.c_str(), static_cast<long long>(kBatchRhs),
                    e.batch_s, e.seq_s, e.speedup,
                    i + 1 < batch_entries.size() ? "," : "");
      out << line;
    }
    out << "  ],\n  \"lambda_sweep\": [\n";
    for (std::size_t i = 0; i < sweep_entries.size(); ++i) {
      const SweepEntry& e = sweep_entries[i];
      char line[256];
      std::snprintf(line, sizeof line,
                    "    {\"matrix\": \"%s\", \"lambdas\": %lld, "
                    "\"refactorize_s\": %.6e, \"full_s\": %.6e, "
                    "\"speedup\": %.3f}%s\n",
                    e.matrix.c_str(), static_cast<long long>(kSweepLambdas),
                    e.refactorize_s, e.full_s, e.speedup,
                    i + 1 < sweep_entries.size() ? "," : "");
      out << line;
    }
    out << "  ],\n  \"narrow_rhs\": [\n";
    for (std::size_t i = 0; i < narrow_entries.size(); ++i) {
      const NarrowEntry& e = narrow_entries[i];
      char line[320];
      std::snprintf(line, sizeof line,
                    "    {\"matrix\": \"%s\", \"rhs\": 1, \"sweeps\": %lld, "
                    "\"cached_s\": %.6e, \"rebuilt_s\": %.6e, "
                    "\"speedup\": %.3f, \"larft_calls\": %llu}%s\n",
                    e.matrix.c_str(), static_cast<long long>(kNarrowSweeps),
                    e.cached_s, e.rebuilt_s, e.speedup,
                    static_cast<unsigned long long>(e.larft_calls),
                    i + 1 < narrow_entries.size() ? "," : "");
      out << line;
    }
    out << "  ],\n  \"mixed\": [\n";
    for (std::size_t i = 0; i < mixed_entries.size(); ++i) {
      const MixedEntry& e = mixed_entries[i];
      char line[384];
      std::snprintf(
          line, sizeof line,
          "    {\"matrix\": \"%s\", \"f64_bytes\": %llu, \"f32_bytes\": "
          "%llu, \"memory_ratio\": %.3f, \"f64_sweep_s\": %.6e, "
          "\"f32_sweep_s\": %.6e, \"sweep_speedup\": %.3f, "
          "\"refine_iters\": %lld, \"refined_resid\": %.6e}%s\n",
          e.matrix.c_str(), static_cast<unsigned long long>(e.f64_bytes),
          static_cast<unsigned long long>(e.f32_bytes), e.memory_ratio,
          e.f64_sweep_s, e.f32_sweep_s, e.sweep_speedup,
          static_cast<long long>(e.refine_iters), e.refined_resid,
          i + 1 < mixed_entries.size() ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
