// Solve-path shoot-out: unpreconditioned CG vs ULV-preconditioned CG vs
// the hierarchical direct solves (GOFMM ULV, HODLR Woodbury).
//
// For each zoo matrix the bench compresses a fine-tolerance operator,
// builds the coarse factorized preconditioner (make_preconditioner), and
// reports per method: setup seconds (compress and/or factorize), solve
// seconds, CG iterations, the achieved relative residual, plus the
// factorization's flop/memory accounting and logdet. The cg/pcg rows
// measure the residual against the shared fine operator; the *-direct
// rows measure it against the solver's OWN compression (that is the
// quantity a direct factorization controls — its gap to the fine
// operator is the compression-tolerance difference, not solver error).
//
//   $ ./bench_solve [n] [rhs] [matrices...]
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/hodlr.hpp"
#include "bench/common.hpp"
#include "core/factorization.hpp"
#include "core/solvers.hpp"

using namespace gofmm;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? index_t(std::atoll(argv[1])) : 2048;
  const index_t rhs = argc > 2 ? index_t(std::atoll(argv[2])) : 4;
  std::vector<std::string> names;
  for (int i = 3; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"K04", "K07", "G02", "COVTYPE"};

  Table table({"matrix", "method", "setup_s", "solve_s", "iters", "resid",
               "logdet", "fact_GF", "fact_MB"});

  for (const std::string& name : names) {
    std::shared_ptr<SPDMatrix<double>> k = zoo::make_matrix<double>(name, n);
    const index_t actual_n = k->size();
    const double lambda = 0.5;
    la::Matrix<double> b =
        la::Matrix<double>::random_normal(actual_n, rhs, 1009);

    // Fine operator shared by both CG variants.
    Timer t;
    auto kc = CompressedMatrix<double>::compress(
        k, Config::defaults()
               .with_leaf_size(128)
               .with_max_rank(128)
               .with_tolerance(1e-7)
               .with_budget(0.03));
    const double fine_s = t.seconds();

    {
      la::Matrix<double> x;
      t.reset();
      const SolveReport rep =
          conjugate_gradient<double>(kc, lambda, b, x, 1e-8, 1000);
      table.add_row({name, "cg", Table::num(fine_s), Table::num(t.seconds()),
                     std::to_string(rep.iterations),
                     Table::sci(operator_residual(kc, lambda, b, x)), "-", "-", "-"});
    }

    {
      t.reset();
      auto prec = make_preconditioner<double>(k, lambda);
      const double prec_s = t.seconds();
      const FactorizationStats fs = prec->factorization_stats();
      la::Matrix<double> x;
      t.reset();
      const SolveReport rep =
          preconditioned_solve<double>(kc, lambda, b, x, *prec, 1e-8, 1000);
      table.add_row(
          {name, "pcg(ulv)", Table::num(fine_s + prec_s),
           Table::num(t.seconds()), std::to_string(rep.iterations),
           Table::sci(operator_residual(kc, lambda, b, x)),
           Table::num(prec->logdet(), 6),
           Table::num(double(fs.flops) * 1e-9 / std::max(fs.seconds, 1e-12)),
           Table::num(double(fs.memory_bytes) / 1e6)});
    }

    {
      // Direct ULV solve of a tight pure-HSS compression (no outer CG).
      t.reset();
      auto direct = CompressedMatrix<double>::compress_unique(
          k, Config::defaults()
                 .with_leaf_size(128)
                 .with_max_rank(128)
                 .with_tolerance(1e-7)
                 .with_budget(0.0));
      direct->factorize(lambda);
      const double setup_s = t.seconds();
      const FactorizationStats fs = direct->factorization_stats();
      t.reset();
      la::Matrix<double> x = direct->solve(b);
      double ld = 0;
      try {
        ld = direct->logdet();
      } catch (const StateError&) {
        ld = std::nan("");
      }
      table.add_row(
          {name, "ulv-direct", Table::num(setup_s), Table::num(t.seconds()),
           "1", Table::sci(operator_residual<double>(*direct, lambda, b, x)),
           Table::num(ld, 6),
           Table::num(double(fs.flops) * 1e-9 / std::max(fs.seconds, 1e-12)),
           Table::num(double(fs.memory_bytes) / 1e6)});
    }

    {
      // HODLR Woodbury direct solver through the same Factorizable API.
      baseline::HodlrOptions ho;
      ho.leaf_size = 128;
      ho.tolerance = 1e-7;
      ho.max_rank = 256;
      t.reset();
      baseline::Hodlr<double> h(*k, ho);
      h.factorize(lambda);
      const double setup_s = t.seconds();
      const FactorizationStats fs = h.factorization_stats();
      t.reset();
      la::Matrix<double> x = h.solve(b);
      double ld = 0;
      try {
        ld = h.logdet();
      } catch (const StateError&) {
        ld = std::nan("");  // factored operator came out indefinite
      }
      table.add_row(
          {name, "hodlr-direct", Table::num(setup_s), Table::num(t.seconds()),
           "1", Table::sci(operator_residual<double>(h, lambda, b, x)),
           Table::num(ld, 6),
           Table::num(double(fs.flops) * 1e-9 / std::max(fs.seconds, 1e-12)),
           Table::num(double(fs.memory_bytes) / 1e6)});
    }
  }

  table.print();
  return 0;
}
