// Figure 5 reproduction (#5): relative error eps2 across the whole matrix
// zoo under the Angle distance, for two tolerances, plus the paper's two
// rescue experiments (tau=1e-10 for K13/K14, leaf size 64 for G01-G03).
//
// Paper reference: most matrices reach high accuracy at tau=1e-5 / 3%
// budget; K06 and K15-K17 have high off-diagonal rank and do not compress
// at s=512; K13/K14 suffer adaptive-rank underestimation but recover at
// tau=1e-10; G01-G03 recover with a smaller leaf size.
#include "common.hpp"

using namespace gofmm;

namespace {

Config base_config(double tol, double budget, index_t m = 128) {
  Config cfg;
  cfg.leaf_size = m;
  cfg.max_rank = 128;
  cfg.tolerance = tol;
  cfg.kappa = 32;
  cfg.budget = budget;
  cfg.distance = tree::DistanceKind::Angle;
  return cfg;
}

}  // namespace

int main() {
  const index_t n = 2048;
  Table table({"matrix", "eps2_tau1e-2_b1%", "eps2_tau1e-5_b3%", "rescue",
               "avg_rank", "note"});

  const char* names[] = {"K02", "K03", "K04", "K05", "K06", "K07", "K08",
                         "K09", "K10", "K12", "K13", "K14", "K15", "K16",
                         "K17", "K18", "G01", "G02", "G03", "G04", "G05"};

  for (const char* name : names) {
    auto k = zoo::make_matrix<float>(name, n);

    auto loose = bench::run_gofmm(*k, base_config(1e-2, 0.01), 32);
    auto tight = bench::run_gofmm(*k, base_config(1e-5, 0.03), 32);

    std::string rescue = "-";
    std::string note;
    const std::string nm(name);
    if (nm == "K13" || nm == "K14") {
      // Paper: adaptive ID underestimates the rank; tau=1e-10 recovers.
      // (The rank cap must be opened too, else it binds before tau.)
      Config rescue_cfg = base_config(1e-10, 0.03);
      rescue_cfg.max_rank = 256;
      auto r = bench::run_gofmm(*k, rescue_cfg, 32);
      rescue = Table::sci(r.eps2);
      note = "tau=1e-10, s=256";
    } else if (nm == "G01" || nm == "G02" || nm == "G03") {
      // Paper: these need a smaller leaf size for high accuracy.
      auto r = bench::run_gofmm(*k, base_config(1e-5, 0.03, 64), 32);
      rescue = Table::sci(r.eps2);
      note = "m=64";
    } else if (nm == "K06" || nm == "K15" || nm == "K16" || nm == "K17") {
      note = "high rank (paper: does not compress)";
    }

    table.add_row({name, Table::sci(loose.eps2), Table::sci(tight.eps2),
                   rescue, Table::num(tight.avg_rank), note});
  }

  std::printf(
      "Figure 5: eps2 across the matrix zoo, Angle distance (single prec.)\n"
      "paper: compressible matrices reach ~tau; K06/K15-K17 high-rank;\n"
      "       K13/K14 rescued by tau=1e-10; G01-G03 rescued by m=64\n\n");
  table.print();
  return 0;
}
