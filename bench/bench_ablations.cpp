// Ablations of the design choices called out in DESIGN.md §5 (these back
// several claims the paper makes in passing):
//   1. neighbor-importance sampling vs uniform row sampling for the ID
//      (drives the Fig. 7 lexicographic-vs-distance accuracy gap);
//   2. adaptive rank (tau) vs fixed rank (the K13/K14 failure mode);
//   3. cached K_βα / K_β̃α̃ blocks vs on-the-fly evaluation (§2.2
//      "Given enough memory, caching can reduce the time...");
//   4. budget sweep: the HSS -> FMM continuum (Fig. 6 in miniature).
#include "common.hpp"

using namespace gofmm;

int main() {
  const index_t n = 2048;

  {
    std::printf("Ablation 1: neighbor-importance vs uniform ID sampling\n\n");
    Table t({"matrix", "sampling", "eps2", "avg_rank"});
    for (const char* name : {"K04", "G03"}) {
      auto k = zoo::make_matrix<double>(name, n);
      for (bool neighbors : {true, false}) {
        Config cfg;
        cfg.leaf_size = 128;
        cfg.max_rank = 128;
        cfg.tolerance = 1e-7;
        cfg.kappa = 32;
        cfg.budget = 0.03;
        cfg.neighbor_sampling = neighbors;
        auto res = bench::run_gofmm(*k, cfg, 32);
        t.add_row({name, neighbors ? "neighbor" : "uniform",
                   Table::sci(res.eps2), Table::num(res.avg_rank)});
      }
    }
    t.print();
  }

  {
    std::printf("\nAblation 2: adaptive tolerance vs fixed rank\n\n");
    Table t({"matrix", "mode", "eps2", "avg_rank", "comp_s"});
    for (const char* name : {"K02", "K13"}) {
      auto k = zoo::make_matrix<double>(name, n);
      struct M {
        const char* label;
        double tol;
        index_t rank;
      };
      for (const M& m : {M{"tau=1e-2", 1e-2, 128}, M{"tau=1e-5", 1e-5, 128},
                         M{"tau=1e-10", 1e-10, 128},
                         M{"fixed s=128", 0.0, 128}}) {
        Config cfg;
        cfg.leaf_size = 128;
        cfg.max_rank = m.rank;
        cfg.tolerance = m.tol;
        cfg.kappa = 32;
        cfg.budget = 0.03;
        auto res = bench::run_gofmm(*k, cfg, 32);
        t.add_row({name, m.label, Table::sci(res.eps2),
                   Table::num(res.avg_rank), Table::num(res.compress_seconds)});
      }
    }
    t.print();
  }

  {
    std::printf("\nAblation 3: cached vs on-the-fly interaction blocks\n\n");
    Table t({"matrix", "blocks", "comp_s", "eval_s", "cached_MB"});
    for (const char* name : {"K04", "K02"}) {
      std::shared_ptr<const SPDMatrix<double>> k =
          zoo::make_matrix<double>(name, n);
      for (bool cache : {true, false}) {
        Config cfg;
        cfg.leaf_size = 128;
        cfg.max_rank = 128;
        cfg.tolerance = 1e-5;
        cfg.kappa = 32;
        cfg.budget = 0.05;
        cfg.cache_blocks = cache;
        auto kc = CompressedMatrix<double>::compress(k, cfg);
        la::Matrix<double> w =
            la::Matrix<double>::random_normal(k->size(), 64, 3);
        kc.evaluate(w);
        t.add_row({name, cache ? "cached" : "on-the-fly",
                   Table::num(kc.stats().total_seconds),
                   Table::num(kc.last_eval_stats().seconds),
                   Table::num(double(kc.stats().cached_bytes) / 1048576.0)});
      }
    }
    t.print();
  }

  {
    std::printf("\nAblation 4: budget sweep (HSS -> FMM continuum)\n\n");
    Table t({"budget", "eps2", "near_frac", "eval_s"});
    auto k = zoo::make_matrix<double>("K04", n);
    for (double budget : {0.0, 0.01, 0.03, 0.10, 0.25}) {
      Config cfg;
      cfg.leaf_size = 128;
      cfg.max_rank = 64;
      cfg.tolerance = 0;
      cfg.kappa = 32;
      cfg.budget = budget;
      auto res = bench::run_gofmm(*k, cfg, 32);
      t.add_row({Table::num(100.0 * budget) + "%", Table::sci(res.eps2),
                 Table::num(res.near_fraction), Table::num(res.eval_seconds)});
    }
    t.print();
  }
  return 0;
}
