// Table 4 reproduction (#19-#26): ASKIT-like configuration vs GOFMM on
// the Gaussian-kernel matrices K04 (compressible) and K06 (high rank),
// two sizes and two tolerances, geometric distances for both, r = 1.
//
// Paper reference: accuracies match by construction; compression times are
// comparable on K04; on K06 (where both hit the max rank s) GOFMM's
// out-of-order traversal wins up to 2x in compression.
#include "baselines/askit.hpp"
#include "common.hpp"

using namespace gofmm;

int main() {
  Table table({"#", "case", "N", "tau", "code", "eps2", "comp_s", "eval_s"});

  int exp_id = 19;
  for (const char* name : {"K04", "K06"}) {
    for (index_t n : {2048, 4096}) {
      for (double tau : {1e-3, 1e-6}) {
        auto k = zoo::make_matrix<double>(name, n);

        // ASKIT-like: geometric distance, level-synchronous, kappa-driven
        // near field, no symmetrisation.
        Config askit = baseline::askit_like_config(32);
        askit.leaf_size = 128;
        askit.max_rank = 128;
        askit.tolerance = tau;
        auto res_a = bench::run_gofmm(*k, askit, 1);

        // GOFMM with geometric distance and 7% budget (as in the paper).
        Config gofmm_cfg;
        gofmm_cfg.distance = tree::DistanceKind::Geometric;
        gofmm_cfg.leaf_size = 128;
        gofmm_cfg.max_rank = 128;
        gofmm_cfg.tolerance = tau;
        gofmm_cfg.kappa = 32;
        gofmm_cfg.budget = 0.07;
        auto res_g = bench::run_gofmm(*k, gofmm_cfg, 1);

        table.add_row({std::to_string(exp_id), name, std::to_string(n),
                       Table::sci(tau), "ASKIT-like", Table::sci(res_a.eps2),
                       Table::num(res_a.compress_seconds),
                       Table::num(res_a.eval_seconds)});
        table.add_row({std::to_string(exp_id), name, std::to_string(n),
                       Table::sci(tau), "GOFMM", Table::sci(res_g.eps2),
                       Table::num(res_g.compress_seconds),
                       Table::num(res_g.eval_seconds)});
        ++exp_id;
      }
    }
  }

  std::printf(
      "Table 4: ASKIT-like vs GOFMM (geometric distance, r = 1)\n"
      "paper: similar accuracy; GOFMM up to 2x faster compression on the\n"
      "       rank-saturated K06 thanks to out-of-order traversal\n\n");
  table.print();
  return 0;
}
