// Table 5 reproduction (#27-#46): the paper's per-architecture
// configuration sweep — accuracy, wall-clock time and GFLOP/s for the
// machine-learning kernel matrices (double precision) and the
// K02/K15/G03/G04 matrices (single precision).
//
// Paper reference: ARM/Haswell/KNL/P100 rows. This container is a single
// x86-64 core, so every row runs on "CPU(1core)" — the architecture
// comparison becomes a configuration comparison (budget, m, s, h), which
// is the controllable half of the paper's table. Efficiency claims tied
// to 24-core Haswell / KNL / GPU peaks are recorded as not reproducible
// here (see EXPERIMENTS.md).
#include "common.hpp"

using namespace gofmm;

namespace {

template <typename T>
void run_case(const char* paper_ids, const char* label,
              const SPDMatrix<T>& k, Config cfg, index_t rhs, Table& table) {
  auto res = bench::run_gofmm(k, cfg, rhs);
  table.add_row({paper_ids, label, "CPU(1core)",
                 Table::num(100.0 * cfg.budget) + "%", Table::sci(res.eps2),
                 Table::num(res.compress_seconds),
                 Table::num(res.compress_gflops),
                 Table::num(res.eval_seconds),
                 Table::num(res.eval_gflops)});
}

Config make_config(index_t m, index_t s, double budget, index_t kappa) {
  Config cfg;
  cfg.leaf_size = m;
  cfg.max_rank = s;
  cfg.tolerance = 1e-5;
  cfg.kappa = kappa;
  cfg.budget = budget;
  cfg.distance = tree::DistanceKind::Angle;
  return cfg;
}

}  // namespace

int main() {
  Table table({"paper#", "case", "arch", "budget", "eps2", "comp_s",
               "comp_GFs", "eval_s", "eval_GFs"});

  // ---- double precision: ML kernel matrices (paper #27-#34) ----
  {
    auto k = zoo::make_dataset_kernel<double>("MNIST", 2048, 1.0);
    run_case("27-28", "MNIST h1 (fp64)", *k, make_config(256, 128, 0.05, 32),
             64, table);
  }
  {
    auto k = zoo::make_dataset_kernel<double>("COVTYPE", 4096, 0.3);
    run_case("29-31", "COVTYPE h0.3 (fp64)", *k,
             make_config(256, 256, 0.12, 32), 128, table);
  }
  {
    auto k = zoo::make_dataset_kernel<double>("HIGGS", 4096, 0.9);
    run_case("32-34", "HIGGS h0.9 (fp64)", *k,
             make_config(256, 128, 0.003, 64), 128, table);
  }

  // ---- single precision: K02 / K15 / G03 / G04 (paper #35-#46) ----
  {
    auto k = zoo::make_matrix<float>("K02", 4096);
    run_case("35-37", "K02 (fp32)", *k, make_config(128, 128, 0.03, 32), 128,
             table);
  }
  {
    auto k = zoo::make_matrix<float>("K15", 1600);
    run_case("38-40", "K15 (fp32)", *k, make_config(128, 128, 0.10, 32), 128,
             table);
  }
  {
    auto k = zoo::make_matrix<float>("G03", 2048);
    run_case("41-43", "G03 (fp32)", *k, make_config(64, 128, 0.03, 32), 128,
             table);
  }
  {
    auto k = zoo::make_matrix<float>("G04", 2048);
    run_case("44-46", "G04 (fp32)", *k, make_config(128, 128, 0.03, 32), 128,
             table);
  }

  std::printf(
      "Table 5: configuration sweep (paper's architecture table)\n"
      "paper archs ARM/Haswell/KNL/P100 -> this host: one x86-64 core;\n"
      "shapes to check: high-budget rows sustain much higher eval GFLOP/s\n"
      "than tiny-budget rows (#32-34), and small-m G03 hurts efficiency\n\n");
  table.print();
  return 0;
}
