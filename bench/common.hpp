// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints one of the paper's tables/figures as an aligned text
// table (and the paper's reference numbers in the header comments), using
// laptop-scale problem sizes — see DESIGN.md §2 "Size substitution".
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "core/gofmm.hpp"
#include "la/blas.hpp"
#include "matrices/zoo.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace gofmm::bench {

/// One compress+evaluate measurement.
struct RunResult {
  double eps2 = 0;          ///< sampled relative error (Eq. 11)
  double compress_seconds = 0;
  double eval_seconds = 0;  ///< one evaluate() call with `rhs` columns
  double compress_gflops = 0;
  double eval_gflops = 0;
  double avg_rank = 0;
  index_t max_rank = 0;
  double near_fraction = 0;
};

/// Compresses `k` under `cfg`, evaluates `rhs` right-hand sides, estimates
/// the error on 100 sampled rows (as in the paper's §3).
template <typename T>
RunResult run_gofmm(const SPDMatrix<T>& k, const Config& cfg, index_t rhs,
                    std::uint64_t rhs_seed = 1000) {
  RunResult out;
  auto kc = CompressedMatrix<T>::compress(borrow(k), cfg);
  out.compress_seconds = kc.stats().total_seconds;
  out.compress_gflops =
      double(kc.stats().skel_flops) * 1e-9 /
      std::max(1e-12, kc.stats().skel_seconds + kc.stats().cache_seconds);
  out.avg_rank = kc.stats().avg_rank;
  out.max_rank = kc.stats().max_rank;
  out.near_fraction = kc.stats().near_fraction;

  la::Matrix<T> w = la::Matrix<T>::random_normal(k.size(), rhs, rhs_seed);
  EvalWorkspace<T> ws;
  la::Matrix<T> u = kc.apply(w, ws);
  out.eval_seconds = ws.last.seconds;
  out.eval_gflops = ws.last.gflops();
  out.eps2 = kc.estimate_error(w, u, 100);
  return out;
}

/// One measurement of an already-built operator through the abstract
/// interface: `rhs` right-hand sides applied with a reused workspace,
/// error sampled against the exact oracle. Backend-agnostic — this is the
/// bench-side counterpart of writing solvers against CompressedOperator.
struct OperatorRunResult {
  double eps2 = 0;
  double compress_seconds = 0;
  double eval_seconds = 0;
  double eval_gflops = 0;
  double avg_rank = 0;
  double memory_mb = 0;
};

template <typename T>
OperatorRunResult run_operator(const CompressedOperator<T>& op,
                               const SPDMatrix<T>& k, index_t rhs,
                               std::uint64_t rhs_seed = 1000) {
  OperatorRunResult out;
  const OperatorStats st = op.operator_stats();
  out.compress_seconds = st.compress_seconds;
  out.avg_rank = st.avg_rank;
  out.memory_mb = double(st.memory_bytes) * 1e-6;

  la::Matrix<T> w = la::Matrix<T>::random_normal(op.size(), rhs, rhs_seed);
  EvalWorkspace<T> ws;
  la::Matrix<T> u = op.apply(w, ws);
  out.eval_seconds = ws.last.seconds;
  out.eval_gflops = ws.last.gflops();
  out.eps2 = sampled_relative_error(k, w, u, 100);
  return out;
}

/// Dense reference matvec time: u = K * w through the la::gemm substrate
/// (the paper's Fig. 1 SGEMM baseline).
template <typename T>
double dense_matvec_seconds(const la::Matrix<T>& k, index_t rhs,
                            std::uint64_t seed = 1) {
  la::Matrix<T> w = la::Matrix<T>::random_normal(k.rows(), rhs, seed);
  la::Matrix<T> u(k.rows(), rhs);
  Timer t;
  la::gemm(la::Op::None, la::Op::None, T(1), k, w, T(0), u);
  return t.seconds();
}

}  // namespace gofmm::bench
