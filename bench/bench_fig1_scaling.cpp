// Figure 1 reproduction: dense SGEMM O(N²) versus GOFMM compression
// O(N log N) and evaluation O(N) on the K02 matrix, in single precision.
//
// Paper reference (24-core Haswell, r = 512/1024/2048, N up to 147 456):
// crossover including compression at N = 16 384; 18x speedup at N = 147K.
// Here: one CPU core, r = 32/64/128, N up to 9 216 — the curves keep their
// slopes (GEMM quadratic in N, compression ~N log N, evaluation ~N), so
// the crossover appears at laptop scale; the exact N shifts with hardware.
#include "common.hpp"

using namespace gofmm;

int main() {
  const index_t sizes[] = {1024, 2304, 4096, 9216};
  const index_t rhs[] = {32, 64, 128};

  Table table({"N", "gemm_r32", "gemm_r64", "gemm_r128", "compress",
               "eval_r32", "eval_r64", "eval_r128", "eps2", "speedup_r128"});

  for (index_t n : sizes) {
    std::shared_ptr<const SPDMatrix<float>> k =
        zoo::make_matrix<float>("K02", n);
    const auto* dense = dynamic_cast<const DenseSPD<float>*>(k.get());

    std::vector<double> gemm_s;
    for (index_t r : rhs)
      gemm_s.push_back(bench::dense_matvec_seconds(dense->matrix(), r));

    Config cfg;
    cfg.leaf_size = 128;
    cfg.max_rank = 128;
    cfg.tolerance = 1e-5;
    cfg.kappa = 32;
    cfg.budget = 0.03;
    cfg.distance = tree::DistanceKind::Angle;

    auto kc = CompressedMatrix<float>::compress(k, cfg);
    const double comp_s = kc.stats().total_seconds;

    std::vector<double> eval_s;
    double eps2 = 0;
    for (index_t r : rhs) {
      la::Matrix<float> w = la::Matrix<float>::random_normal(k->size(), r, 7);
      la::Matrix<float> u = kc.evaluate(w);
      eval_s.push_back(kc.last_eval_stats().seconds);
      if (r == rhs[2]) eps2 = kc.estimate_error(w, u, 100);
    }

    table.add_row({std::to_string(k->size()), Table::num(gemm_s[0]),
                   Table::num(gemm_s[1]), Table::num(gemm_s[2]),
                   Table::num(comp_s), Table::num(eval_s[0]),
                   Table::num(eval_s[1]), Table::num(eval_s[2]),
                   Table::sci(eps2),
                   Table::num(gemm_s[2] / std::max(1e-12, eval_s[2]))});
  }

  std::printf(
      "Figure 1: SGEMM-vs-GOFMM scaling on K02 (single precision)\n"
      "paper: O(N^2) GEMM vs O(N log N) compress + O(N) eval;\n"
      "       crossover (incl. compression) at N=16384, 18x at N=147K\n\n");
  table.print();
  return 0;
}
