// Table 3 reproduction (#13-#18): HODLR vs STRUMPACK-like randomized HSS
// vs GOFMM on K02, K04, K07, K12, K17, G03 at a common target accuracy.
//
// Paper reference (N = 36K/32K/65K, m = 512, 1024 rhs, target eps2 1e-4):
//   - HODLR matches accuracy on K02/K04/K07/K12 but with slower eval;
//   - STRUMPACK's lexicographic ordering fails on the 6-D kernels K04/K07
//     (compression blows up to ~500 s, accuracy degrades);
//   - K17 is hard for everyone (eps2 ~ 1e-1);
//   - on G03, GOFMM's sparse correction wins ~25x in compression.
// Shapes to verify here: who wins, and where the lexicographic codes fail.
#include <numeric>

#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "common.hpp"

using namespace gofmm;

namespace {

template <typename Op>
double matvec_error(const SPDMatrix<double>& k, Op&& apply, index_t rhs) {
  // Sampled-row eps2 against the exact operator (same metric as GOFMM's).
  const index_t n = k.size();
  la::Matrix<double> w = la::Matrix<double>::random_normal(n, rhs, 5);
  la::Matrix<double> u = apply(w);

  const index_t s = std::min<index_t>(100, n);
  std::vector<index_t> rows(static_cast<std::size_t>(s));
  Prng rng(17);
  for (index_t i = 0; i < s; ++i) rows[std::size_t(i)] = rng.below(n);
  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), index_t(0));
  la::Matrix<double> krows = k.submatrix(rows, all);
  la::Matrix<double> exact(s, rhs);
  la::gemm(la::Op::None, la::Op::None, 1.0, krows, w, 0.0, exact);
  double num = 0;
  double den = 0;
  for (index_t j = 0; j < rhs; ++j)
    for (index_t i = 0; i < s; ++i) {
      const double e = exact(i, j);
      const double a = u(rows[std::size_t(i)], j);
      num += (a - e) * (a - e);
      den += e * e;
    }
  return den > 0 ? std::sqrt(num / den) : 0.0;
}

}  // namespace

int main() {
  const index_t rhs = 64;  // paper: 1024 rhs at N=36K; scaled with N
  Table table({"case", "code", "eps2", "comp_s", "eval_s", "avg_rank"});

  const char* cases[] = {"K02", "K04", "K07", "K12", "K17", "G03"};
  for (const char* name : cases) {
    auto k = zoo::make_matrix<double>(name, 2048);
    const index_t n = k->size();

    {  // HODLR: ACA in input order.
      baseline::HodlrOptions opts;
      opts.leaf_size = 128;
      opts.tolerance = 1e-5;
      opts.max_rank = 512;
      baseline::Hodlr<double> h(*k, opts);
      la::Matrix<double> w = la::Matrix<double>::random_normal(n, rhs, 5);
      Timer t;
      la::Matrix<double> u = h.matvec(w);
      const double eval_s = t.seconds();
      const double eps2 =
          matvec_error(*k, [&](const la::Matrix<double>& ww) {
            return h.matvec(ww);
          }, rhs);
      table.add_row({name, "HODLR", Table::sci(eps2),
                     Table::num(h.stats().compress_seconds),
                     Table::num(eval_s), Table::num(h.stats().avg_rank)});
      (void)u;
    }
    {  // STRUMPACK-like randomized HSS: lexicographic + O(N^2 p) sketch.
      baseline::RandHssOptions opts;
      opts.leaf_size = 128;
      opts.max_rank = 128;
      opts.tolerance = 1e-5;
      baseline::RandHss<double> h(*k, opts);
      la::Matrix<double> w = la::Matrix<double>::random_normal(n, rhs, 5);
      Timer t;
      la::Matrix<double> u = h.matvec(w);
      const double eval_s = t.seconds();
      const double eps2 =
          matvec_error(*k, [&](const la::Matrix<double>& ww) {
            return h.matvec(ww);
          }, rhs);
      table.add_row(
          {name, "RandHSS", Table::sci(eps2),
           Table::num(h.stats().sketch_seconds + h.stats().build_seconds),
           Table::num(eval_s), Table::num(h.stats().avg_rank)});
      (void)u;
    }
    {  // GOFMM, Angle distance, 3% budget.
      Config cfg;
      cfg.leaf_size = 128;
      cfg.max_rank = 128;
      cfg.tolerance = 1e-5;
      cfg.kappa = 32;
      cfg.budget = 0.03;
      cfg.distance = tree::DistanceKind::Angle;
      auto res = bench::run_gofmm(*k, cfg, rhs);
      table.add_row({name, "GOFMM", Table::sci(res.eps2),
                     Table::num(res.compress_seconds),
                     Table::num(res.eval_seconds), Table::num(res.avg_rank)});
    }
  }

  std::printf(
      "Table 3: HODLR vs STRUMPACK-like randomized HSS vs GOFMM\n"
      "paper: lexicographic codes fail on 6-D kernels (K04/K07); K17 hard\n"
      "       for all; GOFMM ~25x faster compression on G03 via S != 0\n\n");
  table.print();
  return 0;
}
