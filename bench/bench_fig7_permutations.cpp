// Figure 7 reproduction (#9-#12): the five index orderings
// (Lexicographic, Random, Kernel 2-norm, Angle, Geometric) compared by
// accuracy and average skeleton rank.
//
// Paper reference: distance-based orderings find far lower ranks and/or
// higher accuracy; for the graph matrix G03 no coordinates exist, yet the
// Gram distances still compress it — lexicographic order reaches low rank
// only because its uniform samples are poor, and its error is large.
#include "common.hpp"

using namespace gofmm;

int main() {
  const index_t n = 2048;
  Table table({"matrix", "ordering", "eps2", "avg_rank", "comp_s"});

  struct Case {
    const char* name;
    index_t leaf;
  };
  const Case cases[] = {{"K02", 64}, {"K04", 64}, {"COVTYPE", 64},
                        {"G03", 64}};

  for (const auto& c : cases) {
    std::unique_ptr<SPDMatrix<float>> k;
    if (std::string(c.name) == "COVTYPE")
      k = zoo::make_dataset_kernel<float>("COVTYPE", n, 1.0);
    else
      k = zoo::make_matrix<float>(c.name, n);

    for (tree::DistanceKind kind :
         {tree::DistanceKind::Lexicographic, tree::DistanceKind::Random,
          tree::DistanceKind::Kernel, tree::DistanceKind::Angle,
          tree::DistanceKind::Geometric}) {
      if (kind == tree::DistanceKind::Geometric && k->points() == nullptr) {
        table.add_row({c.name, to_string(kind), "n/a (no coordinates)", "-",
                       "-"});
        continue;
      }
      Config cfg;
      cfg.leaf_size = c.leaf;
      // Paper: tau=1e-7 with s=512 at N=65K. Scaled to N=2K the cap must
      // stay proportionally tight (s=64) or every ordering trivially
      // compresses the globally low-rank kernel cases.
      cfg.max_rank = 64;
      cfg.tolerance = 1e-7;
      cfg.kappa = 32;
      cfg.budget = 0.03;
      cfg.distance = kind;
      auto res = bench::run_gofmm(*k, cfg, 32);
      table.add_row({c.name, to_string(kind), Table::sci(res.eps2),
                     Table::num(res.avg_rank),
                     Table::num(res.compress_seconds)});
    }
  }

  std::printf(
      "Figure 7: index orderings, tau=1e-7, kappa=32, 3%% budget, m=64\n"
      "paper: Gram/geometric distances give low rank + high accuracy;\n"
      "       lexicographic/random orderings fail on permuted matrices;\n"
      "       G03 (no coordinates) still compresses geometry-obliviously\n\n");
  table.print();
  return 0;
}
