// Backend shoot-out through the unified CompressedOperator interface.
//
// Builds the same SPD matrix with every compression backend in the repo —
// GOFMM, HODLR, randomized HSS, and the global ACA low-rank control — and
// drives each through the identical run_operator() path: one blocked
// apply() with a reused workspace, error sampled against the oracle.
// The bench body never names a backend type after construction; that is
// the point.
//
//   $ ./bench_operators [n] [rhs]
#include <cstdlib>
#include <memory>
#include <vector>

#include "baselines/aca.hpp"
#include "baselines/hodlr.hpp"
#include "baselines/rand_hss.hpp"
#include "bench/common.hpp"
#include "core/solvers.hpp"

using namespace gofmm;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? index_t(std::atoll(argv[1])) : 4096;
  const index_t rhs = argc > 2 ? index_t(std::atoll(argv[2])) : 8;

  // make_matrix substitutes its catalog default when n <= 0 and may round
  // grid sizes down, so always measure against the actual size.
  std::shared_ptr<SPDMatrix<double>> k = zoo::make_matrix<double>("K04", n);
  const index_t actual_n = k->size();
  std::printf("matrix K04, N=%lld, %lld rhs\n\n", (long long)actual_n,
              (long long)rhs);

  std::vector<std::unique_ptr<CompressedOperator<double>>> ops;

  ops.push_back(CompressedMatrix<double>::compress_unique(
      k, Config::defaults()
             .with_leaf_size(128)
             .with_max_rank(128)
             .with_tolerance(1e-5)
             .with_budget(0.03)));

  baseline::HodlrOptions hopts;
  hopts.leaf_size = 128;
  hopts.tolerance = 1e-5;
  hopts.max_rank = 256;
  ops.push_back(std::make_unique<baseline::Hodlr<double>>(*k, hopts));

  baseline::RandHssOptions sopts;
  sopts.leaf_size = 128;
  sopts.max_rank = 128;
  sopts.tolerance = 1e-5;
  ops.push_back(std::make_unique<baseline::RandHss<double>>(*k, sopts));

  ops.push_back(std::make_unique<baseline::AcaLowRank<double>>(
      *k, 1e-5, /*max_rank=*/256));

  Table table({"backend", "comp_s", "eval_s", "eval_GFs", "avg_rank", "MB",
               "eps2", "cg_iters"});
  for (const auto& op : ops) {
    const bench::OperatorRunResult res = bench::run_operator(*op, *k, rhs);

    // A regularised CG solve through the same interface (one rhs).
    la::Matrix<double> b = la::Matrix<double>::random_normal(actual_n, 1, 3);
    la::Matrix<double> x;
    const SolveReport rep =
        conjugate_gradient<double>(
            *op, 1.0, b, x,
            SolveOptions::defaults().with_max_iterations(200));

    table.add_row({op->name(), Table::num(res.compress_seconds),
                   Table::num(res.eval_seconds),
                   Table::num(res.eval_gflops), Table::num(res.avg_rank),
                   Table::num(res.memory_mb), Table::sci(res.eps2),
                   std::to_string(rep.iterations)});
  }
  std::printf(
      "every row built by a different backend, measured by the same code\n"
      "(gofmm should pair the lowest eps2 with sub-quadratic memory;\n"
      " aca is the flat low-rank control and degrades on clustered data)\n\n");
  table.print();
  return 0;
}
