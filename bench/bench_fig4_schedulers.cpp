// Figure 4 reproduction (#1-#4): strong scaling of compression and
// evaluation under the three traversal engines.
//
// Paper reference: COVTYPE (m=800, 12% budget, eps2=2e-3, avg rank 487)
// is compute-bound and scales to 65% of Haswell peak; K02 (m=512, 3%
// budget, avg rank 35) is memory-bound and stops scaling. The HEFT
// runtime ("wall-clock time") beats level-by-level and omp-task on
// compression throughout.
//
// This container exposes a single CPU core: the thread sweep measures
// scheduling *overhead* (the shape to check is HEFT <= level-by-level <=
// omp-task at 1 thread, and graceful behaviour when oversubscribed)
// rather than parallel speedup.
#include <omp.h>

#include "common.hpp"

using namespace gofmm;

namespace {

void sweep(const char* label, const SPDMatrix<float>& k, Config base,
           Table& table) {
  for (rt::Engine engine :
       {rt::Engine::Heft, rt::Engine::LevelByLevel, rt::Engine::OmpTask}) {
    for (int threads : {1, 2, 4}) {
      Config cfg = base;
      cfg.engine = engine;
      cfg.num_workers = threads;
      omp_set_num_threads(threads);
      auto res = bench::run_gofmm(k, cfg, 64);
      table.add_row({label, rt::to_string(engine), std::to_string(threads),
                     Table::num(res.compress_seconds),
                     Table::num(res.eval_seconds), Table::sci(res.eps2),
                     Table::num(res.avg_rank)});
    }
  }
  omp_set_num_threads(1);
}

}  // namespace

int main() {
  Table table({"matrix", "engine", "threads", "comp_s", "eval_s", "eps2",
               "avg_rank"});

  {
    // #1/#2 analog: COVTYPE Gaussian kernel, high budget, compute-bound.
    auto k = zoo::make_dataset_kernel<float>("COVTYPE", 4096, 0.3);
    Config cfg;
    cfg.leaf_size = 256;
    cfg.max_rank = 256;
    cfg.tolerance = 1e-5;
    cfg.kappa = 32;
    cfg.budget = 0.12;
    sweep("COVTYPE", *k, cfg, table);
  }
  {
    // #3/#4 analog: K02, low budget and low rank, memory-bound.
    auto k = zoo::make_matrix<float>("K02", 4096);
    Config cfg;
    cfg.leaf_size = 128;
    cfg.max_rank = 128;
    cfg.tolerance = 1e-5;
    cfg.kappa = 32;
    cfg.budget = 0.03;
    sweep("K02", *k, cfg, table);
  }

  std::printf(
      "Figure 4: scheduling engines on compression + evaluation\n"
      "paper: HEFT wall-clock < level-by-level < omp-task for compression;\n"
      "       COVTYPE compute-bound (scales), K02 memory-bound (does not)\n\n");
  table.print();
  return 0;
}
