// google-benchmark microbenchmarks of the partitioning tree and the
// randomized neighbor search (the non-numeric half of compression cost).
#include <benchmark/benchmark.h>

#include "matrices/kernels.hpp"
#include "matrices/pointcloud.hpp"
#include "tree/ann.hpp"
#include "tree/cluster_tree.hpp"

namespace {

using namespace gofmm;

std::unique_ptr<zoo::KernelSPD<double>> make_kernel(index_t n) {
  zoo::KernelParams p;
  p.kind = zoo::KernelKind::Gaussian;
  p.bandwidth = 1.0;
  return std::make_unique<zoo::KernelSPD<double>>(
      zoo::uniform_cloud<double>(6, n, 11), p);
}

void BM_TreeBuildKernelDistance(benchmark::State& state) {
  const index_t n = state.range(0);
  auto k = make_kernel(n);
  tree::Metric<double> metric(*k, tree::DistanceKind::Kernel);
  for (auto _ : state) {
    Prng rng(7);
    tree::ClusterTree t(n, 128, tree::metric_split(metric, rng));
    benchmark::DoNotOptimize(t.num_nodes());
  }
}
BENCHMARK(BM_TreeBuildKernelDistance)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TreeBuildAngleDistance(benchmark::State& state) {
  const index_t n = state.range(0);
  auto k = make_kernel(n);
  tree::Metric<double> metric(*k, tree::DistanceKind::Angle);
  for (auto _ : state) {
    Prng rng(7);
    tree::ClusterTree t(n, 128, tree::metric_split(metric, rng));
    benchmark::DoNotOptimize(t.num_nodes());
  }
}
BENCHMARK(BM_TreeBuildAngleDistance)->Arg(1024)->Arg(4096);

void BM_AnnSearch(benchmark::State& state) {
  const index_t n = state.range(0);
  auto k = make_kernel(n);
  tree::Metric<double> metric(*k, tree::DistanceKind::Kernel);
  for (auto _ : state) {
    tree::AnnOptions opts;
    opts.kappa = 32;
    opts.leaf_size = 128;
    opts.max_iterations = 5;
    auto res = tree::all_nearest_neighbors(*k, metric, opts);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_AnnSearch)->Arg(1024)->Arg(4096);

void BM_MortonAncestorQueries(benchmark::State& state) {
  tree::ClusterTree t(4096, 64, tree::SplitFn{});
  const auto& nodes = t.nodes();
  for (auto _ : state) {
    index_t count = 0;
    for (const tree::Node* a : nodes)
      for (const tree::Node* b : t.leaves())
        count += a->morton.is_ancestor_of(b->morton) ? 1 : 0;
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_MortonAncestorQueries);

}  // namespace

BENCHMARK_MAIN();
