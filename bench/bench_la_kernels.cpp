// google-benchmark microbenchmarks of the dense linear-algebra substrate.
//
// GOFMM's absolute efficiency "is portable and only relies on
// BLAS/LAPACK" (paper §4); these report what this repo's own kernels
// sustain on the host, which bounds every GFs column in the tables.
#include <benchmark/benchmark.h>

#include "la/blas.hpp"
#include "la/lapack.hpp"
#include "la/ldlt.hpp"
#include "la/qr.hpp"

namespace {

using gofmm::index_t;
using gofmm::la::Matrix;

void BM_GemmFloat(benchmark::State& state) {
  const index_t n = state.range(0);
  auto a = Matrix<float>::random_normal(n, n, 1);
  auto b = Matrix<float>::random_normal(n, n, 2);
  Matrix<float> c(n, n);
  for (auto _ : state) {
    gofmm::la::gemm(gofmm::la::Op::None, gofmm::la::Op::None, 1.0f, a, b,
                    0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(n) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmFloat)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmDouble(benchmark::State& state) {
  const index_t n = state.range(0);
  auto a = Matrix<double>::random_normal(n, n, 1);
  auto b = Matrix<double>::random_normal(n, n, 2);
  Matrix<double> c(n, n);
  for (auto _ : state) {
    gofmm::la::gemm(gofmm::la::Op::None, gofmm::la::Op::None, 1.0, a, b, 0.0,
                    c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(n) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmDouble)->Arg(128)->Arg(256)->Arg(512);

void BM_Geqp3(benchmark::State& state) {
  const index_t m = 2 * state.range(0);
  const index_t n = state.range(0);
  auto a = Matrix<double>::random_normal(m, n, 3);
  for (auto _ : state) {
    auto qr = gofmm::la::geqp3(a, 0.0, 0);
    benchmark::DoNotOptimize(qr.rank);
  }
}
BENCHMARK(BM_Geqp3)->Arg(64)->Arg(128)->Arg(256);

void BM_Geqp3EarlyExit(benchmark::State& state) {
  // Rank-32 matrix: the adaptive QR should stop ~32 regardless of n.
  const index_t n = state.range(0);
  auto b = Matrix<double>::random_normal(2 * n, 32, 4);
  auto c = Matrix<double>::random_normal(32, n, 5);
  auto a = gofmm::la::matmul(b, c);
  for (auto _ : state) {
    auto qr = gofmm::la::geqp3(a, 1e-10, 0);
    benchmark::DoNotOptimize(qr.rank);
  }
}
BENCHMARK(BM_Geqp3EarlyExit)->Arg(128)->Arg(256);

void BM_Trsm(benchmark::State& state) {
  const index_t n = state.range(0);
  auto a = Matrix<double>::random_normal(n, n, 6);
  for (index_t i = 0; i < n; ++i) a(i, i) = 4.0 + std::abs(a(i, i));
  auto b0 = Matrix<double>::random_normal(n, 64, 7);
  for (auto _ : state) {
    Matrix<double> b = b0;
    gofmm::la::trsm(true, gofmm::la::Op::None, false, 1.0, a, b);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_Trsm)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const index_t n = state.range(0);
  auto g = Matrix<double>::random_normal(n, n, 8);
  Matrix<double> spd(n, n);
  gofmm::la::gemm(gofmm::la::Op::None, gofmm::la::Op::Trans, 1.0, g, g, 0.0,
                  spd);
  for (index_t i = 0; i < n; ++i) spd(i, i) += double(n);
  for (auto _ : state) {
    Matrix<double> a = spd;
    benchmark::DoNotOptimize(gofmm::la::potrf_lower(a));
  }
}
BENCHMARK(BM_Potrf)->Arg(128)->Arg(256)->Arg(512);

void BM_Getrf(benchmark::State& state) {
  // The capacitance/rotated-block hot path of the factorization engine:
  // blocked right-looking LU with the gemm_panel trailing downdate.
  const index_t n = state.range(0);
  auto a0 = Matrix<double>::random_normal(n, n, 9);
  std::vector<index_t> piv;
  for (auto _ : state) {
    Matrix<double> a = a0;
    benchmark::DoNotOptimize(gofmm::la::getrf(a, piv));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 / 3.0 * double(n) * double(n) * double(n) *
          double(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Getrf)->Arg(128)->Arg(256)->Arg(512);

void BM_Sytrf(benchmark::State& state) {
  // Pivoted Bunch-Kaufman LDLᵀ — the indefinite-diagonal fallback of the
  // factorization engine; blocked right-looking with LASYF panels and the
  // gemm_panel trailing downdate, same treatment as BM_Potrf/BM_Getrf.
  const index_t n = state.range(0);
  auto g = Matrix<double>::random_normal(n, n, 13);
  Matrix<double> indef(n, n);
  gofmm::la::gemm(gofmm::la::Op::None, gofmm::la::Op::Trans, 1.0, g, g, 0.0,
                  indef);
  for (index_t i = 0; i < n; ++i) indef(i, i) -= double(n) / 2.0;
  std::vector<index_t> ipiv;
  for (auto _ : state) {
    Matrix<double> a = indef;
    benchmark::DoNotOptimize(gofmm::la::sytrf_lower(a, ipiv));
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      1.0 / 3.0 * double(n) * double(n) * double(n) *
          double(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sytrf)->Arg(128)->Arg(256)->Arg(512);

void BM_Geqrf(benchmark::State& state) {
  // Blocked Householder QR of a tall basis — the per-node rotation the
  // orthogonal-ULV engine computes once at construction.
  const index_t n = state.range(0);
  auto a0 = Matrix<double>::random_normal(2 * n, n, 10);
  std::vector<double> tau;
  for (auto _ : state) {
    Matrix<double> a = a0;
    gofmm::la::geqrf(a, tau);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      double(gofmm::la::geqrf_flops(2 * n, n)) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Geqrf)->Arg(64)->Arg(128)->Arg(256);

void BM_OrmqrLeft(benchmark::State& state) {
  // Applying the stored rotations: the engine's solve sweeps (rhs-wide)
  // and construction-time block rotations both run through ormqr_left.
  const index_t m = 2 * state.range(0);
  const index_t r = state.range(0);
  auto a = Matrix<double>::random_normal(m, r, 11);
  std::vector<double> tau;
  gofmm::la::geqrf(a, tau);
  auto c0 = Matrix<double>::random_normal(m, m, 12);
  for (auto _ : state) {
    Matrix<double> c = c0;
    gofmm::la::ormqr_left(gofmm::la::Op::Trans, a, tau, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      double(gofmm::la::ormqr_flops(m, r, m)) * double(state.iterations()) *
          1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OrmqrLeft)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
